//! Fleet serving: many IoT devices sharing one programmable surface.
//!
//! The paper's §7 outlook — "multiple IoT devices in different
//! polarization orientations" behind a single surface — promoted to a
//! first-class subsystem. A [`Fleet`] holds heterogeneous devices
//! (Wi-Fi stations, BLE wearables, USRP endpoints; transmissive or
//! reflective geometry; arbitrary orientations and distances), and a
//! [`Scheduler`] allocates surface configurations across them under a
//! pluggable [`Policy`]:
//!
//! * [`Policy::MaxMin`] — one shared bias maximizing the *worst* link
//!   (fairness / broadcast);
//! * [`Policy::Favor`] — one shared bias maximizing one device's margin
//!   over the rest (polarization access control);
//! * [`Policy::TimeDivision`] — per-device optimal biases round-robined
//!   over the air, with per-device duty-cycled throughput via
//!   [`propagation::capacity`].
//!
//! The engine underneath is the shared-plan batch path: one compiled
//! [`StackEvaluator`] plan per distinct carrier is probed once per bias
//! for the whole fleet (`O(plans)` cascades per probe instead of one
//! per device), each device's bias-independent scatter paths are
//! precomputed once ([`PreparedLink`]), and bias rows fan out across
//! threads. [`Fleet::naive_powers_matrix`] keeps the per-device
//! reference loop alive as the equivalence and perf baseline.
//!
//! ```
//! use llama_core::fleet::{Fleet, FleetDevice, Scheduler};
//! use rfmath::units::Degrees;
//!
//! let mut fleet = Fleet::new(metasurface::designs::fr4_optimized());
//! fleet.push(FleetDevice::wifi("kitchen sensor", Degrees(10.0), 250.0, 1));
//! fleet.push(FleetDevice::ble("wrist wearable", Degrees(70.0), 300.0, 2));
//!
//! let outcome = Scheduler::max_min().run(&fleet);
//! assert_eq!(outcome.per_device.len(), 2);
//! // A shared bias serves both devices continuously (duty 1).
//! assert!(outcome.per_device.iter().all(|d| d.duty == 1.0));
//! assert!(outcome.per_device.iter().all(|d| d.power_dbm.is_finite()));
//! ```

use std::rc::Rc;

use control::controller::Objective;
use control::sweep::{coarse_to_fine_multi, warm_refine_multi, Probe, SweepConfig, WarmConfig};
use devices::profile::DeviceProfile;
use metasurface::designs::Design;
use metasurface::evaluator::{PlanCache, StackEvaluator};
use metasurface::response::{Metasurface, SurfaceResponse};
use metasurface::stack::{BiasState, SUPPLY_CEILING};
use propagation::capacity::{capacity_bits, duty_cycled_throughput};
use propagation::link::PreparedLink;
use propagation::rays::Deployment;
use rfmath::rng::SeedSplitter;
use rfmath::units::{Dbm, Degrees, Meters, Seconds, Volts};

use crate::scenario::Scenario;

/// One device served by the shared surface: a radio-level profile plus
/// the fully specified link scenario it lives in.
#[derive(Clone, Debug)]
pub struct FleetDevice {
    /// Display label ("kitchen sensor", "wearable #7", …).
    pub label: String,
    /// Radio-level identity (antenna, carrier, noise, sensitivity).
    pub profile: DeviceProfile,
    /// The device's link scenario (geometry, environment, orientation).
    /// Its `design` field is ignored — the fleet's shared design rules.
    pub scenario: Scenario,
}

impl FleetDevice {
    /// Builds a device from a profile and an explicit base scenario,
    /// mounting the profile's antenna at `orientation`.
    pub fn from_profile(
        label: impl Into<String>,
        profile: DeviceProfile,
        mut scenario: Scenario,
        orientation: Degrees,
    ) -> Self {
        scenario.rx =
            propagation::antenna::OrientedAntenna::new(profile.antenna.clone(), orientation);
        scenario.frequency = profile.carrier;
        scenario.tx_power = profile.tx_power;
        Self {
            label: label.into(),
            profile,
            scenario,
        }
    }

    /// A Figure 20-class Wi-Fi IoT station at `orientation`,
    /// `distance_cm` from its AP, with its own channel realization.
    pub fn wifi(
        label: impl Into<String>,
        orientation: Degrees,
        distance_cm: f64,
        seed: u64,
    ) -> Self {
        Self::from_profile(
            label,
            DeviceProfile::wifi_esp8266(),
            Scenario::wifi_iot_default()
                .with_distance_cm(distance_cm)
                .with_seed(seed),
            orientation,
        )
    }

    /// A Figure 2(b)-class BLE wearable.
    pub fn ble(
        label: impl Into<String>,
        orientation: Degrees,
        distance_cm: f64,
        seed: u64,
    ) -> Self {
        Self::from_profile(
            label,
            DeviceProfile::ble_wearable(),
            Scenario::ble_default()
                .with_distance_cm(distance_cm)
                .with_seed(seed),
            orientation,
        )
    }

    /// A §4-class controlled USRP endpoint (anechoic, transmissive).
    pub fn usrp(
        label: impl Into<String>,
        orientation: Degrees,
        distance_cm: f64,
        seed: u64,
    ) -> Self {
        Self::from_profile(
            label,
            DeviceProfile::usrp_directional(),
            Scenario::transmissive_default()
                .with_distance_cm(distance_cm)
                .with_seed(seed),
            orientation,
        )
    }

    /// Converts the device's geometry to the reflective deployment: the
    /// endpoints move to the same side of the surface, which sits half
    /// the previous endpoint separation away.
    pub fn reflective(mut self) -> Self {
        let tx_rx = self.scenario.deployment.tx_rx_distance();
        self.scenario.deployment = Deployment::reflective(tx_rx, Meters(tx_rx.0 / 2.0));
        self
    }

    /// Places the device at an explicit room deployment (position of
    /// AP, device and surface mount), overriding the preset's collinear
    /// layout. The scenario zoo builds rooms with this.
    pub fn placed(mut self, deployment: Deployment) -> Self {
        self.scenario.deployment = deployment;
        self
    }
}

/// A population of devices sharing one surface design.
#[derive(Clone, Debug)]
pub struct Fleet {
    /// The shared surface design every device is served through.
    pub design: Design,
    devices: Vec<FleetDevice>,
}

impl Fleet {
    /// An empty fleet behind a shared surface design.
    pub fn new(design: Design) -> Self {
        Self {
            design,
            devices: Vec::new(),
        }
    }

    /// Adds a device.
    pub fn push(&mut self, device: FleetDevice) {
        self.devices.push(device);
    }

    /// The devices, in service order.
    pub fn devices(&self) -> &[FleetDevice] {
        &self.devices
    }

    /// Mutable access to one device — the mobility simulator's in-place
    /// update path (kept crate-private so external callers go through
    /// the [`crate::sim::DynamicFleet`] API, which also tracks which
    /// links the change dirtied).
    pub(crate) fn device_mut(&mut self, idx: usize) -> &mut FleetDevice {
        &mut self.devices[idx]
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no devices are enrolled.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// A deterministic mixed Wi-Fi/BLE population of `n` devices —
    /// alternating radios, orientations spread over the half circle,
    /// distances staggered between 1.5 m and 5 m, per-device channel
    /// realizations derived from `seed`. The reference workload of the
    /// fleet benches and the 32-device acceptance gate.
    pub fn mixed_wifi_ble(n: usize, seed: u64) -> Self {
        let split = SeedSplitter::new(seed);
        let mut fleet = Self::new(metasurface::designs::fr4_optimized());
        for i in 0..n {
            let orientation = Degrees(-90.0 + 180.0 * ((i * 37) % 180) as f64 / 180.0);
            let distance_cm = 150.0 + ((i * 61) % 350) as f64;
            let dev_seed = split.derive("fleet-device", i as u64);
            let device = if i % 2 == 0 {
                FleetDevice::wifi(format!("wifi-{i}"), orientation, distance_cm, dev_seed)
            } else {
                FleetDevice::ble(format!("ble-{i}"), orientation, distance_cm, dev_seed)
            };
            fleet.push(device);
        }
        fleet
    }

    /// The naive per-device reference loop: every device deploys its own
    /// [`Metasurface`] and rebuilds its link per probe — exactly what
    /// `multilink` did before the shared-plan engine. Kept as the
    /// equivalence contract (batched == naive to 1e-12) and the perf
    /// baseline the CI smoke measures the engine against.
    pub fn naive_powers_matrix(&self, biases: &[BiasState]) -> Vec<Vec<f64>> {
        let mut rows = vec![Vec::with_capacity(self.devices.len()); biases.len()];
        for device in &self.devices {
            let mut surface = Metasurface::new(self.design.clone());
            for (row, &bias) in rows.iter_mut().zip(biases) {
                surface.set_bias(bias);
                row.push(device.scenario.link().received_dbm(Some(&surface)).0);
            }
        }
        rows
    }
}

/// The shared-plan fleet evaluation engine: compiled once per fleet,
/// probed once per bias for all devices.
pub struct FleetEvaluator {
    links: Vec<PreparedLink>,
    plans: Vec<Rc<StackEvaluator>>,
    /// Device index → index into `plans` (devices sharing a carrier
    /// share a compiled plan).
    plan_of: Vec<usize>,
    v_max: Volts,
    /// Hardware bias defect ([`crate::faults::BiasFault`]) masked into
    /// every probe: the search still commands any bias, but the physics
    /// answers as the broken panel would. `None` = healthy.
    fault: Option<crate::faults::BiasFault>,
    /// Bench-only A/B switch: force the per-cell reference batch path
    /// ([`StackEvaluator::eval_batch_reference`]) instead of the
    /// structure-of-arrays fast path. Never set in production.
    reference_batch: bool,
}

impl FleetEvaluator {
    /// Compiles the fleet: one evaluation plan per distinct carrier, one
    /// prepared link (scatter paths precomputed) per device.
    pub fn new(fleet: &Fleet) -> Self {
        Self::with_plan_cache(fleet, &PlanCache::new(&fleet.design.stack))
    }

    /// [`FleetEvaluator::new`] drawing compiled plans from a shared
    /// [`PlanCache`] — the panel-array path: K panels cut from one
    /// design can share one cache, so a carrier served on every panel
    /// compiles once instead of K times. The cache **must** be built
    /// from the same stack as `fleet.design` (the panel scheduler keys
    /// caches by design name).
    pub fn with_plan_cache(fleet: &Fleet, cache: &PlanCache) -> Self {
        assert!(!fleet.is_empty(), "cannot evaluate an empty fleet");
        let mut plans: Vec<Rc<StackEvaluator>> = Vec::new();
        let mut plan_of = Vec::with_capacity(fleet.len());
        let mut links = Vec::with_capacity(fleet.len());
        for device in fleet.devices() {
            let f = device.scenario.frequency;
            let idx = plans
                .iter()
                .position(|p| p.frequency().0.to_bits() == f.0.to_bits())
                .unwrap_or_else(|| {
                    plans.push(cache.plan(f));
                    plans.len() - 1
                });
            plan_of.push(idx);
            links.push(PreparedLink::new(device.scenario.link()));
        }
        Self {
            links,
            plans,
            plan_of,
            v_max: SUPPLY_CEILING,
            fault: None,
            reference_batch: false,
        }
    }

    /// Bench-only A/B switch: `true` forces every probe batch through
    /// the per-cell reference path
    /// ([`StackEvaluator::eval_batch_reference`]) so perf gates can
    /// measure the structure-of-arrays win in-repo. Results agree to
    /// well below `1e-12` either way.
    pub fn set_reference_batch(&mut self, on: bool) {
        self.reference_batch = on;
    }

    /// Installs (or clears) a stuck/clamped unit-cell column defect.
    /// Every subsequent probe evaluates the bias the broken hardware
    /// would actually realize, so Algorithm 1 re-optimizes around the
    /// defect instead of trusting voltages the panel cannot reach. A
    /// healthy fault is normalized to `None` (the probe path is then
    /// bitwise identical to an unfaulted evaluator).
    pub fn set_bias_fault(&mut self, fault: Option<crate::faults::BiasFault>) {
        self.fault = fault.filter(|f| !f.is_healthy());
    }

    /// The bias the panel hardware realizes for a commanded `bias`.
    fn faulted(&self, bias: BiasState) -> BiasState {
        match &self.fault {
            Some(f) => f.apply(bias),
            None => bias,
        }
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.links.len()
    }

    /// Re-prepares a single device's probe handle after a mobility step,
    /// leaving every other device's cached scatter and every compiled
    /// plan untouched — the incremental path that lets a tick that moved
    /// 2 of 32 devices re-prepare only those 2 links. Returns `true`
    /// when the update was a cheap rebind (rotation or power change —
    /// the cached bias-independent paths were reused) and `false` when
    /// the device genuinely moved and its link needed a full
    /// re-preparation ([`PreparedLink::rebind`]).
    ///
    /// # Panics
    /// Panics when `idx` is out of range or when the update changes the
    /// device's carrier — plans are compiled per carrier at
    /// construction, and no mobility model retunes a radio.
    pub fn update_device(&mut self, idx: usize, device: &FleetDevice) -> bool {
        assert!(idx < self.links.len(), "device index out of range");
        let f = device.scenario.frequency;
        assert!(
            self.plans[self.plan_of[idx]].frequency().0.to_bits() == f.0.to_bits(),
            "mobility must not change a device's carrier \
             (plans are compiled per carrier at construction)"
        );
        let link = device.scenario.link();
        let cheap = self.links[idx].static_paths_reusable(&link);
        self.links[idx].rebind_in_place(link);
        cheap
    }

    /// Number of compiled per-frequency plans (≤ device count; the
    /// amortization the shared-plan API buys).
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// Every device's received power under one shared bias state
    /// (clamped to the supply ceiling, like `Metasurface::set_bias`).
    pub fn powers_dbm(&self, bias: BiasState) -> Vec<f64> {
        let bias = self.faulted(bias.clamped(self.v_max));
        let responses: Vec<SurfaceResponse> = self
            .plans
            .iter()
            .map(|p| SurfaceResponse::new(p.frequency(), p.response(bias)))
            .collect();
        if self.reference_batch {
            // Baseline arm: the pre-optimization allocating probe.
            return self
                .links
                .iter()
                .zip(&self.plan_of)
                .map(|(link, &k)| link.received_dbm_with(Some(&responses[k])).0)
                .collect();
        }
        let mut scratch = Vec::new();
        self.links
            .iter()
            .zip(&self.plan_of)
            .map(|(link, &k)| {
                link.received_dbm_scratch(Some(&responses[k]), &mut scratch)
                    .0
            })
            .collect()
    }

    /// The full probe matrix: `result[b][d]` is device `d`'s power under
    /// `biases[b]`. Each plan's cascades are evaluated in one batch
    /// (per-axis solves deduplicated across the whole probe list), then
    /// per-bias device projections fan out across threads.
    pub fn powers_matrix(&self, biases: &[BiasState]) -> Vec<Vec<f64>> {
        let clamped: Vec<BiasState> = biases
            .iter()
            .map(|b| self.faulted(b.clamped(self.v_max)))
            .collect();
        // One batched cascade pass per distinct carrier.
        let responses: Vec<Vec<SurfaceResponse>> = self
            .plans
            .iter()
            .map(|p| {
                let batch = if self.reference_batch {
                    p.eval_batch_reference(&clamped)
                } else {
                    p.eval_batch(&clamped)
                };
                batch
                    .into_iter()
                    .map(|r| SurfaceResponse::new(p.frequency(), r))
                    .collect()
            })
            .collect();

        // Capture only Sync pieces (the plans hold RefCell memos and
        // must stay on this thread; the responses are already computed).
        let links = &self.links;
        let plan_of = &self.plan_of;
        let responses = &responses;

        let n = clamped.len();
        let threads = if n * self.links.len() < 64 {
            1
        } else {
            rfmath::par::available_threads()
        };
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); n];
        if self.reference_batch {
            // Baseline arm: per-bias closure with the allocating probe,
            // exactly the pre-optimization fan-out.
            let row = move |b: usize| -> Vec<f64> {
                links
                    .iter()
                    .zip(plan_of)
                    .map(|(link, &k)| link.received_dbm_with(Some(&responses[k][b])).0)
                    .collect()
            };
            rfmath::par::par_fill(&mut out, threads, row);
            return out;
        }
        // Chunked fan-out so each worker keeps one path scratch buffer
        // across its whole range of biases: zero per-probe allocation.
        rfmath::par::par_fill_chunked(&mut out, threads, |offset, chunk| {
            let mut scratch = Vec::new();
            for (j, slot) in chunk.iter_mut().enumerate() {
                let b = offset + j;
                let mut row = Vec::with_capacity(links.len());
                for (link, &k) in links.iter().zip(plan_of) {
                    row.push(
                        link.received_dbm_scratch(Some(&responses[k][b]), &mut scratch)
                            .0,
                    );
                }
                *slot = row;
            }
        });
        out
    }

    /// Per-device baseline powers with no surface deployed.
    pub fn baselines_dbm(&self) -> Vec<f64> {
        self.links
            .iter()
            .map(|l| {
                let mut link = l.link().clone();
                link.deployment = link.deployment.without_surface();
                link.received_dbm(None).0
            })
            .collect()
    }
}

/// How the scheduler allocates the surface across the fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Policy {
    /// One shared bias maximizing the worst device's power.
    MaxMin,
    /// One shared bias maximizing `favored`'s margin over the best
    /// other device (polarization access control).
    Favor {
        /// Index of the favored device in fleet order.
        favored: usize,
    },
    /// Round-robin of per-device optimal biases; every device gets its
    /// own peak power for a fraction of the airtime.
    TimeDivision,
}

/// What one device receives from a scheduling decision.
#[derive(Clone, Debug)]
pub struct DeviceService {
    /// Device label, copied from the fleet.
    pub label: String,
    /// The bias state serving this device (shared under `MaxMin` /
    /// `Favor`, per-device under `TimeDivision`).
    pub bias: BiasState,
    /// Received power while being served, dBm.
    pub power_dbm: f64,
    /// Fraction of airtime the device is served (1.0 = continuous).
    pub duty: f64,
    /// Duty-cycled Shannon throughput, bit/s/Hz.
    pub throughput_bits_hz: f64,
    /// Whether the served power clears the device's sensitivity floor.
    pub decodable: bool,
}

/// Outcome of one scheduling run.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// The policy that produced this allocation.
    pub policy: Policy,
    /// Per-device service, in fleet order.
    pub per_device: Vec<DeviceService>,
    /// The shared bias (`MaxMin` / `Favor`); `None` for `TimeDivision`.
    pub shared_bias: Option<BiasState>,
    /// The policy's scalar objective at the chosen allocation (worst
    /// power for `MaxMin`, isolation margin for `Favor`, aggregate
    /// throughput for `TimeDivision`).
    pub score: f64,
    /// Total bias states probed during optimization.
    pub probes: usize,
    /// Optimization wall-clock at the PSU switching budget.
    pub elapsed: Seconds,
    /// Every probed shared bias and the per-device powers it produced.
    pub history: Vec<(BiasState, Vec<f64>)>,
}

impl FleetOutcome {
    /// The well-formed outcome of scheduling nothing: no services, no
    /// probes, a `-∞` score. Both [`Scheduler::run`] and the panel
    /// scheduler return this for an empty fleet instead of panicking
    /// inside the evaluator (or reporting a `+∞` "worst power" from an
    /// unguarded empty reduction).
    pub fn empty(policy: Policy) -> Self {
        Self {
            policy,
            per_device: Vec::new(),
            shared_bias: None,
            score: f64::NEG_INFINITY,
            probes: 0,
            elapsed: Seconds(0.0),
            history: Vec::new(),
        }
    }

    /// The worst served power across the fleet, dBm. An empty outcome
    /// reports `-∞` (nothing is served), not the `+∞` identity of the
    /// min-fold — a `+∞` "worst power" would sail through every
    /// threshold check.
    pub fn min_power_dbm(&self) -> f64 {
        if self.per_device.is_empty() {
            return f64::NEG_INFINITY;
        }
        self.per_device
            .iter()
            .map(|d| d.power_dbm)
            .fold(f64::INFINITY, f64::min)
    }

    /// Aggregate duty-cycled throughput, bit/s/Hz.
    pub fn total_throughput_bits_hz(&self) -> f64 {
        self.per_device.iter().map(|d| d.throughput_bits_hz).sum()
    }
}

/// Allocates surface configurations across a [`Fleet`] under a
/// [`Policy`], searching the bias plane with the same Algorithm 1 core
/// that drives the single-link system (which is the N = 1 case).
#[derive(Clone, Debug)]
pub struct Scheduler {
    /// Bias-plane search strategy.
    pub sweep: SweepConfig,
    /// Allocation policy.
    pub policy: Policy,
    /// `TimeDivision` slot length; each frame serves every device for
    /// one slot, losing one PSU switch per slot boundary.
    pub slot: Seconds,
}

impl Scheduler {
    /// A max-min fairness scheduler with the paper's sweep defaults.
    pub fn max_min() -> Self {
        Self {
            sweep: SweepConfig::paper_default(),
            policy: Policy::MaxMin,
            slot: Seconds(0.2),
        }
    }

    /// An access-control scheduler favoring device `favored`.
    pub fn favor(favored: usize) -> Self {
        Self {
            policy: Policy::Favor { favored },
            ..Self::max_min()
        }
    }

    /// A time-division scheduler round-robining per-device optima.
    pub fn time_division() -> Self {
        Self {
            policy: Policy::TimeDivision,
            ..Self::max_min()
        }
    }

    /// Runs the policy against the fleet and reports the allocation.
    /// An empty fleet yields [`FleetOutcome::empty`] — there is nothing
    /// to optimize, and the evaluator (rightly) refuses to compile
    /// nothing. The panel scheduler shares this guard for panels with no
    /// assigned devices.
    pub fn run(&self, fleet: &Fleet) -> FleetOutcome {
        if fleet.is_empty() {
            return FleetOutcome::empty(self.policy);
        }
        self.run_with_evaluator(fleet, &FleetEvaluator::new(fleet))
    }

    /// [`Scheduler::run`] against an externally compiled evaluator — the
    /// panel-array path, where K panel schedules draw their plans from a
    /// shared [`PlanCache`] instead of compiling per panel. The
    /// evaluator must have been compiled from this exact fleet.
    pub fn run_with_evaluator(&self, fleet: &Fleet, evaluator: &FleetEvaluator) -> FleetOutcome {
        if fleet.is_empty() {
            return FleetOutcome::empty(self.policy);
        }
        assert_eq!(
            evaluator.device_count(),
            fleet.len(),
            "evaluator compiled for a different fleet"
        );
        if let Policy::Favor { favored } = self.policy {
            assert!(favored < fleet.len(), "favored index out of range");
            // Isolation is a margin over the *other* devices; with no
            // other device every probe would score -inf and the
            // "allocation" would be meaningless.
            assert!(
                fleet.len() >= 2,
                "Favor needs at least two devices to isolate between"
            );
        }
        match self.policy {
            Policy::MaxMin => self.run_shared(fleet, evaluator, Objective::WorstLink),
            Policy::Favor { favored } => {
                self.run_shared(fleet, evaluator, Objective::Isolation { favored })
            }
            Policy::TimeDivision => self.run_time_division(fleet, evaluator),
        }
    }

    /// Warm-start re-optimization for the shared-bias policies: re-checks
    /// `prev`'s shared bias against the fleet's *current* state, refines
    /// inside a `warm`-sized window around it, and widens to the full
    /// cold search only when the warm winner scores more than
    /// `warm.regression_db` below the previous outcome — the sign that
    /// the optimum genuinely walked out of the window rather than
    /// drifted within it. All probes spent (warm, plus cold when
    /// widened) stay on the airtime bill, which is what makes the
    /// simulator's per-tick throughput honest about reconfiguration.
    ///
    /// `TimeDivision` schedules (and previous outcomes without a shared
    /// bias, e.g. [`FleetOutcome::empty`]) have nothing to warm from and
    /// fall back to [`Scheduler::run_with_evaluator`].
    pub fn run_warm(
        &self,
        fleet: &Fleet,
        evaluator: &FleetEvaluator,
        prev: &FleetOutcome,
        warm: &WarmConfig,
    ) -> FleetOutcome {
        if fleet.is_empty() {
            return FleetOutcome::empty(self.policy);
        }
        let objective = match self.policy {
            Policy::MaxMin => Objective::WorstLink,
            Policy::Favor { favored } => {
                assert!(favored < fleet.len(), "favored index out of range");
                assert!(
                    fleet.len() >= 2,
                    "Favor needs at least two devices to isolate between"
                );
                Objective::Isolation { favored }
            }
            Policy::TimeDivision => return self.run_with_evaluator(fleet, evaluator),
        };
        assert_eq!(
            evaluator.device_count(),
            fleet.len(),
            "evaluator compiled for a different fleet"
        );
        let Some(prev_bias) = prev.shared_bias else {
            return self.run_with_evaluator(fleet, evaluator);
        };
        let mut outcome = warm_refine_multi(
            &self.sweep,
            warm,
            Probe {
                vx: prev_bias.vx,
                vy: prev_bias.vy,
            },
            |p| evaluator.powers_dbm(BiasState { vx: p.vx, vy: p.vy }),
            |powers| objective.score(powers).unwrap_or(f64::NEG_INFINITY),
        );
        if outcome.best_score < prev.score - warm.regression_db {
            // Widen: full cold search, merged with the warm probes (they
            // were spent on the air) and keeping the better winner — the
            // cold grid need not revisit the warm window.
            let cold = coarse_to_fine_multi(
                &self.sweep,
                |p| evaluator.powers_dbm(BiasState { vx: p.vx, vy: p.vy }),
                |powers| objective.score(powers).unwrap_or(f64::NEG_INFINITY),
            );
            if cold.best_score >= outcome.best_score {
                outcome.best = cold.best;
                outcome.best_score = cold.best_score;
                outcome.best_metrics = cold.best_metrics;
            }
            outcome.probes += cold.probes;
            outcome.duration = Seconds(outcome.duration.0 + cold.duration.0);
            outcome.history.extend(cold.history);
        }
        self.shared_outcome(fleet, evaluator, outcome)
    }

    /// Shared-bias policies: one vector-objective Algorithm 1 run, every
    /// probe evaluated for the whole fleet through the shared plans.
    fn run_shared(
        &self,
        fleet: &Fleet,
        evaluator: &FleetEvaluator,
        objective: Objective,
    ) -> FleetOutcome {
        let outcome = coarse_to_fine_multi(
            &self.sweep,
            |p| evaluator.powers_dbm(BiasState { vx: p.vx, vy: p.vy }),
            |powers| objective.score(powers).unwrap_or(f64::NEG_INFINITY),
        );
        self.shared_outcome(fleet, evaluator, outcome)
    }

    /// Assembles a [`FleetOutcome`] from a completed shared-bias sweep —
    /// the common tail of the cold ([`Scheduler::run_shared`]) and warm
    /// ([`Scheduler::run_warm`]) paths.
    fn shared_outcome(
        &self,
        fleet: &Fleet,
        evaluator: &FleetEvaluator,
        outcome: control::sweep::MultiSweepOutcome,
    ) -> FleetOutcome {
        let bias = BiasState {
            vx: outcome.best.vx,
            vy: outcome.best.vy,
        };
        // If every probe scored -inf the sweep never captured a metric
        // vector (the objective asserts above make this unreachable for
        // the built-in policies, but keep the allocation well-formed for
        // custom arity mishaps): measure the winner directly.
        let best_metrics = if outcome.best_metrics.len() == fleet.len() {
            outcome.best_metrics
        } else {
            evaluator.powers_dbm(bias)
        };
        let per_device = fleet
            .devices()
            .iter()
            .zip(&best_metrics)
            .map(|(device, &power)| DeviceService {
                label: device.label.clone(),
                bias,
                power_dbm: power,
                duty: 1.0,
                throughput_bits_hz: capacity_bits(Dbm(power), &device.profile.noise),
                decodable: device.profile.is_decodable(power),
            })
            .collect();
        FleetOutcome {
            policy: self.policy,
            per_device,
            shared_bias: Some(bias),
            score: outcome.best_score,
            probes: outcome.probes,
            elapsed: outcome.duration,
            history: outcome
                .history
                .into_iter()
                .map(|(p, m)| (BiasState { vx: p.vx, vy: p.vy }, m))
                .collect(),
        }
    }

    /// Time division: a coarse full-range grid probes every device at
    /// once, then each device's refinement window is probed in one
    /// deduplicated shared batch; every device keeps the best bias *it*
    /// saw anywhere in the probe history.
    fn run_time_division(&self, fleet: &Fleet, evaluator: &FleetEvaluator) -> FleetOutcome {
        let t = self.sweep.steps_per_axis.max(2);
        let n_dev = fleet.len();
        let grid = |lo: f64, hi: f64, i: usize| lo + (hi - lo) * i as f64 / (t - 1) as f64;

        // Round 1: coarse grid over the full supply range.
        let mut biases: Vec<BiasState> = Vec::with_capacity(t * t);
        for ix in 0..t {
            for iy in 0..t {
                biases.push(BiasState::new(
                    grid(self.sweep.v_min.0, self.sweep.v_max.0, ix),
                    grid(self.sweep.v_min.0, self.sweep.v_max.0, iy),
                ));
            }
        }
        let mut history: Vec<(BiasState, Vec<f64>)> = biases
            .iter()
            .copied()
            .zip(evaluator.powers_matrix(&biases))
            .collect();

        // Per-device winners of round 1 seed the refinement windows.
        let winner_of = |history: &[(BiasState, Vec<f64>)], d: usize| {
            history
                .iter()
                .max_by(|a, b| a.1[d].total_cmp(&b.1[d]))
                .map(|(b, m)| (*b, m[d]))
                .expect("non-empty history")
        };

        // The refinement window narrows geometrically round over round,
        // matching the Algorithm 1 core: each round probes ±step around
        // the winner at a 2·step/(t−1) spacing, which becomes the next
        // round's step.
        let mut step = (self.sweep.v_max.0 - self.sweep.v_min.0) / (t - 1) as f64;
        for _ in 1..self.sweep.iterations {
            let mut refined: Vec<BiasState> = Vec::new();
            let mut seen: Vec<(u64, u64)> = history
                .iter()
                .map(|(b, _)| (b.vx.0.to_bits(), b.vy.0.to_bits()))
                .collect();
            for d in 0..n_dev {
                let (best, _) = winner_of(&history, d);
                let lo_x = (best.vx.0 - step).max(self.sweep.v_min.0);
                let hi_x = (best.vx.0 + step).min(self.sweep.v_max.0);
                let lo_y = (best.vy.0 - step).max(self.sweep.v_min.0);
                let hi_y = (best.vy.0 + step).min(self.sweep.v_max.0);
                for ix in 0..t {
                    for iy in 0..t {
                        let b = BiasState::new(grid(lo_x, hi_x, ix), grid(lo_y, hi_y, iy));
                        let key = (b.vx.0.to_bits(), b.vy.0.to_bits());
                        if !seen.contains(&key) {
                            seen.push(key);
                            refined.push(b);
                        }
                    }
                }
            }
            if refined.is_empty() {
                break;
            }
            history.extend(
                refined
                    .iter()
                    .copied()
                    .zip(evaluator.powers_matrix(&refined)),
            );
            step = 2.0 * step / (t - 1) as f64;
        }

        // Frame model: every device gets one slot per frame; each slot
        // boundary burns one PSU switch of the slot's airtime.
        let duty = if n_dev == 0 {
            0.0
        } else {
            ((self.slot.0 - self.sweep.switch_period.0).max(0.0) / (self.slot.0 * n_dev as f64))
                .clamp(0.0, 1.0)
        };
        let per_device: Vec<DeviceService> = fleet
            .devices()
            .iter()
            .enumerate()
            .map(|(d, device)| {
                let (bias, power) = winner_of(&history, d);
                DeviceService {
                    label: device.label.clone(),
                    bias,
                    power_dbm: power,
                    duty,
                    throughput_bits_hz: duty_cycled_throughput(
                        Dbm(power),
                        &device.profile.noise,
                        duty,
                    ),
                    decodable: device.profile.is_decodable(power),
                }
            })
            .collect();
        let probes = history.len();
        let score = per_device.iter().map(|d| d.throughput_bits_hz).sum();
        FleetOutcome {
            policy: self.policy,
            per_device,
            shared_bias: None,
            score,
            probes,
            elapsed: Seconds(self.sweep.switch_period.0 * probes as f64),
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet() -> Fleet {
        let mut fleet = Fleet::new(metasurface::designs::fr4_optimized());
        fleet.push(FleetDevice::wifi("w0", Degrees(0.0), 250.0, 10));
        fleet.push(FleetDevice::ble("b0", Degrees(50.0), 320.0, 11));
        fleet.push(FleetDevice::usrp("u0", Degrees(100.0), 36.0, 12));
        fleet
    }

    #[test]
    fn shared_plans_are_deduplicated_by_carrier() {
        let fleet = Fleet::mixed_wifi_ble(8, 5);
        let evaluator = FleetEvaluator::new(&fleet);
        assert_eq!(evaluator.device_count(), 8);
        // 8 devices, 2 distinct carriers (Wi-Fi + BLE): 2 plans.
        assert_eq!(evaluator.plan_count(), 2);
    }

    #[test]
    fn batched_matrix_matches_naive_loop() {
        let fleet = small_fleet();
        let evaluator = FleetEvaluator::new(&fleet);
        let biases: Vec<BiasState> = [(0.0, 0.0), (6.0, 18.0), (30.0, 30.0), (12.0, 3.0)]
            .iter()
            .map(|&(x, y)| BiasState::new(x, y))
            .collect();
        let fast = evaluator.powers_matrix(&biases);
        let naive = fleet.naive_powers_matrix(&biases);
        for (row_fast, row_naive) in fast.iter().zip(&naive) {
            for (a, b) in row_fast.iter().zip(row_naive) {
                assert!((a - b).abs() < 1e-12, "batched {a} vs naive {b}");
            }
        }
        // Single-bias probe agrees with the matrix row.
        let single = evaluator.powers_dbm(biases[1]);
        for (a, b) in single.iter().zip(&fast[1]) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn max_min_serves_everyone_at_one_bias() {
        let outcome = Scheduler::max_min().run(&small_fleet());
        assert_eq!(outcome.per_device.len(), 3);
        let bias = outcome.shared_bias.expect("shared policy");
        assert!(outcome.per_device.iter().all(|d| d.bias == bias));
        assert!(outcome.per_device.iter().all(|d| d.duty == 1.0));
        // The score is the worst link's power.
        assert!((outcome.score - outcome.min_power_dbm()).abs() < 1e-12);
        // And it is the best worst-link over everything probed.
        let hist_best = outcome
            .history
            .iter()
            .map(|(_, m)| m.iter().copied().fold(f64::INFINITY, f64::min))
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(outcome.score, hist_best);
    }

    #[test]
    fn favor_buys_isolation_for_the_favored_device() {
        let mut fleet = Fleet::new(metasurface::designs::fr4_optimized());
        fleet.push(FleetDevice::usrp("ours", Degrees(125.0), 36.0, 72));
        fleet.push(FleetDevice::usrp("neighbour", Degrees(35.0), 36.0, 72));
        let outcome = Scheduler::favor(0).run(&fleet);
        let margin = outcome.per_device[0].power_dbm - outcome.per_device[1].power_dbm;
        assert!(
            margin > 10.0,
            "favored margin = {margin:.1} dB (score {:.1})",
            outcome.score
        );
        assert!((outcome.score - margin).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "favored index")]
    fn favor_validates_index() {
        let _ = Scheduler::favor(9).run(&small_fleet());
    }

    #[test]
    #[should_panic(expected = "at least two devices")]
    fn favor_requires_a_device_to_isolate_against() {
        // Isolation on a singleton fleet would score every probe -inf
        // and return a meaningless empty allocation; fail loudly.
        let mut fleet = Fleet::new(metasurface::designs::fr4_optimized());
        fleet.push(FleetDevice::usrp("only", Degrees(0.0), 36.0, 1));
        let _ = Scheduler::favor(0).run(&fleet);
    }

    #[test]
    fn time_division_beats_shared_bias_per_device() {
        // Per-device optima must each be at least as good as any single
        // shared compromise bias (they are per-device maxima over a
        // superset of the shared history... same grid family), and the
        // duty cycle must split the airtime.
        let fleet = small_fleet();
        let tdm = Scheduler::time_division().run(&fleet);
        let shared = Scheduler::max_min().run(&fleet);
        assert!(tdm.shared_bias.is_none());
        for (t, s) in tdm.per_device.iter().zip(&shared.per_device) {
            assert!(
                t.power_dbm >= s.power_dbm - 1e-9,
                "{}: TDM {:.1} dBm vs shared {:.1} dBm",
                t.label,
                t.power_dbm,
                s.power_dbm
            );
        }
        let duty: f64 = tdm.per_device.iter().map(|d| d.duty).sum();
        assert!(duty <= 1.0 + 1e-12, "duties must fit one frame: {duty}");
        let expected_duty = (0.2 - 0.02) / (0.2 * 3.0);
        assert!((tdm.per_device[0].duty - expected_duty).abs() < 1e-12);
        // Throughput is the duty-cycled capacity.
        for d in &tdm.per_device {
            assert!(d.throughput_bits_hz > 0.0);
        }
        assert!((tdm.score - tdm.total_throughput_bits_hz()).abs() < 1e-12);
    }

    #[test]
    fn time_division_extra_iterations_refine_not_rescan() {
        // A third round must add probes (a finer window around each
        // winner, not a rescan of round 2's grid) and can only improve
        // every device's best power.
        let fleet = small_fleet();
        let mut deep_sched = Scheduler::time_division();
        deep_sched.sweep.iterations = 3;
        let deep = deep_sched.run(&fleet);
        let shallow = Scheduler::time_division().run(&fleet);
        assert!(
            deep.probes > shallow.probes,
            "round 3 added no probes: {} vs {}",
            deep.probes,
            shallow.probes
        );
        for (a, b) in deep.per_device.iter().zip(&shallow.per_device) {
            assert!(a.power_dbm >= b.power_dbm - 1e-12, "{} regressed", a.label);
        }
    }

    #[test]
    fn warm_start_from_the_cold_optimum_never_regresses() {
        // Warm-starting from the cold outcome on an unchanged fleet
        // re-checks that bias first, so the warm score can only match or
        // beat it — at a fifth of the probe bill.
        let fleet = small_fleet();
        let evaluator = FleetEvaluator::new(&fleet);
        let scheduler = Scheduler::max_min();
        let cold = scheduler.run_with_evaluator(&fleet, &evaluator);
        let warm_cfg = WarmConfig::paper_default();
        let warm = scheduler.run_warm(&fleet, &evaluator, &cold, &warm_cfg);
        assert!(
            warm.score >= cold.score,
            "warm {:.2} vs cold {:.2}",
            warm.score,
            cold.score
        );
        assert_eq!(warm.probes, warm_cfg.probe_budget());
        assert!(warm.probes < cold.probes, "warm must be cheaper");
        assert!(warm.shared_bias.is_some());
        // The history starts at the carried-over bias.
        assert_eq!(warm.history[0].0, cold.shared_bias.unwrap());
    }

    #[test]
    fn warm_start_widens_to_cold_on_regression() {
        // A previous outcome claiming a score no warm window can reach
        // forces the widening path: the full cold grid runs on top of
        // the warm probes, and the result matches the cold winner.
        let fleet = small_fleet();
        let evaluator = FleetEvaluator::new(&fleet);
        let scheduler = Scheduler::max_min();
        let cold = scheduler.run_with_evaluator(&fleet, &evaluator);
        let warm_cfg = WarmConfig::paper_default();
        let mut stale = cold.clone();
        stale.shared_bias = Some(BiasState::new(0.0, 0.0));
        stale.score = 1e3; // unreachable: every warm probe "regresses"
        let widened = scheduler.run_warm(&fleet, &evaluator, &stale, &warm_cfg);
        assert_eq!(widened.probes, warm_cfg.probe_budget() + cold.probes);
        assert!(
            widened.score >= cold.score,
            "widened {:.2} vs cold {:.2}",
            widened.score,
            cold.score
        );
    }

    #[test]
    fn warm_start_without_a_shared_bias_falls_back_to_cold() {
        let fleet = small_fleet();
        let evaluator = FleetEvaluator::new(&fleet);
        let scheduler = Scheduler::max_min();
        let empty_prev = FleetOutcome::empty(Policy::MaxMin);
        let out = scheduler.run_warm(
            &fleet,
            &evaluator,
            &empty_prev,
            &WarmConfig::paper_default(),
        );
        let cold = scheduler.run_with_evaluator(&fleet, &evaluator);
        assert_eq!(out.shared_bias, cold.shared_bias);
        assert_eq!(out.probes, cold.probes);
        assert_eq!(out.score, cold.score);
    }

    #[test]
    fn update_device_repreps_one_link_incrementally() {
        let mut fleet = small_fleet();
        let mut evaluator = FleetEvaluator::new(&fleet);
        // Rotation: a cheap rebind (cached scatter reused).
        fleet.device_mut(0).scenario.rx = propagation::antenna::OrientedAntenna::new(
            fleet.devices()[0].scenario.rx.antenna.clone(),
            Degrees(33.0),
        );
        assert!(evaluator.update_device(0, &fleet.devices()[0]));
        // Walk: a full re-preparation (scatter depends on the distance).
        fleet.device_mut(1).scenario = fleet.devices()[1].scenario.clone().with_distance_cm(410.0);
        assert!(!evaluator.update_device(1, &fleet.devices()[1]));
        // The incrementally updated evaluator answers exactly like one
        // compiled from scratch against the moved fleet.
        let fresh = FleetEvaluator::new(&fleet);
        let bias = BiasState::new(11.0, 4.0);
        assert_eq!(evaluator.powers_dbm(bias), fresh.powers_dbm(bias));
    }

    #[test]
    #[should_panic(expected = "carrier")]
    fn update_device_rejects_a_retuned_radio() {
        let fleet = small_fleet();
        let mut evaluator = FleetEvaluator::new(&fleet);
        let mut retuned = fleet.devices()[0].clone();
        retuned.scenario.frequency = rfmath::units::Hertz::from_ghz(5.8);
        let _ = evaluator.update_device(0, &retuned);
    }

    #[test]
    fn reflective_devices_mix_with_transmissive() {
        let mut fleet = Fleet::new(metasurface::designs::fr4_optimized());
        fleet.push(FleetDevice::usrp("through", Degrees(0.0), 36.0, 1));
        fleet.push(FleetDevice::usrp("folded", Degrees(40.0), 70.0, 2).reflective());
        let evaluator = FleetEvaluator::new(&fleet);
        let powers = evaluator.powers_dbm(BiasState::new(6.0, 6.0));
        assert_eq!(powers.len(), 2);
        assert!(powers.iter().all(|p| p.is_finite()));
        let naive = fleet.naive_powers_matrix(&[BiasState::new(6.0, 6.0)]);
        for (a, b) in powers.iter().zip(&naive[0]) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn probes_out_of_range_are_clamped_like_the_supply() {
        let fleet = small_fleet();
        let evaluator = FleetEvaluator::new(&fleet);
        let hot = evaluator.powers_dbm(BiasState::new(99.0, -4.0));
        let clamped = evaluator.powers_dbm(BiasState::new(30.0, 0.0));
        for (a, b) in hot.iter().zip(&clamped) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_fleet_yields_an_explicit_empty_outcome() {
        // Regression: this used to panic in `FleetEvaluator::new` (and
        // an unguarded min-fold would have reported a +∞ worst power).
        let empty = Fleet::new(metasurface::designs::fr4_optimized());
        for scheduler in [
            Scheduler::max_min(),
            Scheduler::favor(0),
            Scheduler::time_division(),
        ] {
            let outcome = scheduler.run(&empty);
            assert!(outcome.per_device.is_empty());
            assert_eq!(outcome.probes, 0);
            assert!(outcome.shared_bias.is_none());
            assert_eq!(outcome.min_power_dbm(), f64::NEG_INFINITY);
            assert_eq!(outcome.total_throughput_bits_hz(), 0.0);
            assert!(outcome.history.is_empty());
        }
    }

    #[test]
    fn shared_plan_cache_reuses_compilations_across_evaluators() {
        // Two sub-fleets on the same design and carriers: a shared cache
        // must compile each carrier once, and the cached evaluators must
        // answer exactly like independently compiled ones.
        let fleet_a = Fleet::mixed_wifi_ble(4, 3);
        let fleet_b = Fleet::mixed_wifi_ble(4, 4);
        let cache = PlanCache::new(&fleet_a.design.stack);
        let a = FleetEvaluator::with_plan_cache(&fleet_a, &cache);
        assert_eq!(cache.plan_count(), 2, "Wi-Fi + BLE carriers");
        let b = FleetEvaluator::with_plan_cache(&fleet_b, &cache);
        assert_eq!(cache.plan_count(), 2, "second fleet reuses both plans");
        let bias = BiasState::new(9.0, 17.0);
        for (evaluator, fleet) in [(&a, &fleet_a), (&b, &fleet_b)] {
            let cached = evaluator.powers_dbm(bias);
            let fresh = FleetEvaluator::new(fleet).powers_dbm(bias);
            assert_eq!(cached, fresh);
        }
    }

    #[test]
    fn mixed_fleet_is_deterministic_in_seed() {
        let a = Fleet::mixed_wifi_ble(6, 9);
        let b = Fleet::mixed_wifi_ble(6, 9);
        let pa = FleetEvaluator::new(&a).powers_dbm(BiasState::new(8.0, 4.0));
        let pb = FleetEvaluator::new(&b).powers_dbm(BiasState::new(8.0, 4.0));
        assert_eq!(pa, pb);
        let c = Fleet::mixed_wifi_ble(6, 10);
        let pc = FleetEvaluator::new(&c).powers_dbm(BiasState::new(8.0, 4.0));
        assert!(pa.iter().zip(&pc).any(|(x, y)| (x - y).abs() > 1e-9));
    }
}
