//! Seeded fault injection: deterministic hardware failures for the
//! serving stack to degrade through.
//!
//! The paper's deployments are physical hardware — varactor bias lines
//! fail open, PSU rails glitch during settling, probe feedback is lost
//! over the air, whole panels lose power — yet every layer of this
//! reproduction assumed a fault-free world. [`FaultPlan`] is the single
//! source of those failures: a seeded, time-windowed plan the
//! [`crate::sim::MobilitySim`] engine consults each tick to decide
//! which panels are dark, which probe reports never arrive, and which
//! unit-cell columns are stuck. Every draw is a **pure function of
//! (seed, fault kind, panel, tick)** — no mutable RNG state — so runs
//! are bitwise reproducible under a seed, two plans with the same
//! parameters agree regardless of evaluation order, and an empty plan
//! ([`FaultPlan::none`]) changes *nothing*: the zero-fault run is
//! bit-identical to a run with no plan at all (the equivalence
//! `proptest_faults` pins).
//!
//! The taxonomy, layer by layer:
//!
//! * **dead unit-cell columns** ([`CellFault`]) — a bias axis frozen
//!   ([`CellFaultKind::Stuck`]) or saturated ([`CellFaultKind::Clamped`])
//!   on one panel. Masked into the panel's evaluator
//!   ([`crate::fleet::FleetEvaluator::set_bias_fault`]) so Algorithm 1
//!   *re-optimizes around the defect*: the search still commands any
//!   bias, but the physics answers as the broken hardware would.
//! * **whole-panel outages** ([`PanelOutage`] windows and/or a per-tick
//!   outage rate) — the engine re-homes the orphaned sub-fleet onto
//!   surviving panels through the handoff machinery and zeroes the dead
//!   panel's serving duty.
//! * **lost probe reports** (a per-attempt loss rate played through the
//!   controller's [`RetryPolicy`]) — each lost delivery bills its
//!   backoff-widened timeout as airtime; a panel that exhausts every
//!   attempt *holds its last good bias* for the tick.
//! * **PSU glitches** (a per-tick rate) — a rail settling excursion
//!   billing [`FaultPlan::psu_glitch_settling`] of extra airtime.

use control::controller::RetryPolicy;
use metasurface::stack::BiasState;
use rfmath::units::{Seconds, Volts};

/// Which bias axis of a panel a unit-cell column fault sits on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// The X bias rail (vertical polarization control).
    X,
    /// The Y bias rail (horizontal polarization control).
    Y,
}

/// How a faulted unit-cell column misbehaves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CellFaultKind {
    /// The varactor bias line failed open or shorted: the axis sits at
    /// this voltage no matter what the rails command.
    Stuck(Volts),
    /// A degraded driver: the axis follows commands but saturates at
    /// this ceiling.
    Clamped(Volts),
}

/// A stuck/dead unit-cell column on one panel's bias axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellFault {
    /// Index of the afflicted panel in the array.
    pub panel: usize,
    /// Which bias axis is broken.
    pub axis: Axis,
    /// The failure mode.
    pub kind: CellFaultKind,
}

/// A half-open time window `[start, start + duration)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// When the fault begins.
    pub start: Seconds,
    /// How long it lasts.
    pub duration: Seconds,
}

impl FaultWindow {
    /// True when `t` falls inside the window.
    pub fn contains(&self, t: Seconds) -> bool {
        t.0 >= self.start.0 && t.0 < self.start.0 + self.duration.0
    }
}

/// A scripted whole-panel outage: the panel serves nobody while the
/// window is open.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PanelOutage {
    /// Index of the panel that goes dark.
    pub panel: usize,
    /// When, and for how long.
    pub window: FaultWindow,
}

/// The bias transfer a plan's dead columns impose on one panel:
/// per-axis stuck/clamped overrides applied to every commanded bias
/// before the physics sees it. A default (healthy) value is the
/// identity.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BiasFault {
    /// Fault on the X axis, if any.
    pub x: Option<CellFaultKind>,
    /// Fault on the Y axis, if any.
    pub y: Option<CellFaultKind>,
}

impl BiasFault {
    /// True when neither axis is faulted (the identity transfer).
    pub fn is_healthy(&self) -> bool {
        self.x.is_none() && self.y.is_none()
    }

    /// The bias the hardware actually realizes when `bias` is commanded.
    pub fn apply(&self, bias: BiasState) -> BiasState {
        let axis = |v: Volts, fault: Option<CellFaultKind>| match fault {
            None => v,
            Some(CellFaultKind::Stuck(frozen)) => frozen,
            Some(CellFaultKind::Clamped(ceiling)) => Volts(v.0.min(ceiling.0)),
        };
        BiasState {
            vx: axis(bias.vx, self.x),
            vy: axis(bias.vy, self.y),
        }
    }
}

/// What the bounded-retry loop did for one searching panel in one tick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReportFate {
    /// Probe-report deliveries that were lost.
    pub lost: usize,
    /// True when every attempt was lost — the controller never heard a
    /// usable report and must hold the last good bias.
    pub exhausted: bool,
    /// Airtime the lost deliveries burned, seconds (each attempt waits
    /// out its backoff-widened timeout before retrying).
    pub airtime: f64,
}

/// A deterministic, seeded fault plan.
///
/// Scripted faults (`dead_columns`, `outages`) fire exactly where
/// written; stochastic faults fire wherever the seeded hash draw for
/// that (fault kind, panel, tick) lands under the configured rate.
/// With every rate zero and every list empty the plan is inert —
/// [`FaultPlan::is_empty`] — and a run under it is bitwise identical to
/// a run with no plan at all.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Root seed all stochastic draws derive from.
    pub seed: u64,
    /// Per-panel, per-tick probability of a whole-panel outage.
    pub panel_outage_rate: f64,
    /// Per-delivery-attempt probability of losing a probe report.
    pub report_loss_rate: f64,
    /// Per-searching-panel, per-tick probability of a PSU settling
    /// glitch.
    pub psu_glitch_rate: f64,
    /// Extra settling airtime one PSU glitch bills, seconds.
    pub psu_glitch_settling: Seconds,
    /// Scripted stuck/clamped unit-cell columns.
    pub dead_columns: Vec<CellFault>,
    /// Scripted whole-panel outage windows.
    pub outages: Vec<PanelOutage>,
    /// Bounded retry/backoff played against lost reports.
    pub retry: RetryPolicy,
    /// Base report timeout each lost delivery waits out (widened by the
    /// retry policy's backoff on successive attempts).
    pub report_timeout: Seconds,
}

impl FaultPlan {
    /// The inert plan: no rates, no scripted faults. Running under it is
    /// bitwise identical to running with no plan at all.
    pub fn none() -> Self {
        Self {
            seed: 0,
            panel_outage_rate: 0.0,
            report_loss_rate: 0.0,
            psu_glitch_rate: 0.0,
            psu_glitch_settling: Seconds(0.05),
            dead_columns: Vec::new(),
            outages: Vec::new(),
            retry: RetryPolicy::default(),
            report_timeout: Seconds(0.1),
        }
    }

    /// A plan with the three stochastic rates set and everything else at
    /// the [`FaultPlan::none`] defaults — the chaos harness's knob.
    pub fn with_rates(seed: u64, outage: f64, report_loss: f64, psu_glitch: f64) -> Self {
        Self {
            seed,
            panel_outage_rate: outage,
            report_loss_rate: report_loss,
            psu_glitch_rate: psu_glitch,
            ..Self::none()
        }
    }

    /// True when the plan can never fire: all rates zero, no scripted
    /// faults.
    pub fn is_empty(&self) -> bool {
        self.panel_outage_rate <= 0.0
            && self.report_loss_rate <= 0.0
            && self.psu_glitch_rate <= 0.0
            && self.dead_columns.is_empty()
            && self.outages.is_empty()
    }

    /// A uniform draw in `[0, 1)`, a pure function of
    /// (seed, label, a, b) — stateless, order-independent.
    fn draw(&self, label: &str, a: u64, b: u64) -> f64 {
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for byte in label.bytes() {
            h = (h ^ byte as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h = splitmix(h ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = splitmix(h ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Is `panel` dark at tick `tick` (simulation time `t`)? True when
    /// a scripted outage window covers `t` or the stochastic outage
    /// draw fires.
    pub fn panel_out(&self, panel: usize, tick: usize, t: Seconds) -> bool {
        if self
            .outages
            .iter()
            .any(|o| o.panel == panel && o.window.contains(t))
        {
            return true;
        }
        self.panel_outage_rate > 0.0
            && self.draw("panel-outage", panel as u64, tick as u64) < self.panel_outage_rate
    }

    /// Did `panel` just come back from an outage at tick `tick` (time
    /// `t`)? True when the panel is up this tick but was dark on the
    /// previous one (`tick_len` earlier). Stateless like
    /// [`FaultPlan::panel_out`] — the revival policy
    /// ([`crate::panels::RevivalPolicy`]) re-draws both ticks instead
    /// of tracking outage history.
    pub fn panel_revived(&self, panel: usize, tick: usize, t: Seconds, tick_len: Seconds) -> bool {
        tick > 0
            && !self.panel_out(panel, tick, t)
            && self.panel_out(panel, tick - 1, Seconds(t.0 - tick_len.0))
    }

    /// Did `panel` just go dark at tick `tick` (time `t`)? The mirror of
    /// [`FaultPlan::panel_revived`]: true when the panel is dark this
    /// tick but was up on the previous one — or when it is dark on tick
    /// 0 (a run that starts inside an outage window still has an
    /// injection edge). Single-fire like revival: a panel dark across
    /// consecutive ticks reports the edge only once. This is the
    /// stateless form of the telemetry plane's
    /// [`crate::telemetry::TelemetryEvent::FaultInjected`] edge.
    pub fn panel_failed(&self, panel: usize, tick: usize, t: Seconds, tick_len: Seconds) -> bool {
        if !self.panel_out(panel, tick, t) {
            return false;
        }
        tick == 0 || !self.panel_out(panel, tick - 1, Seconds(t.0 - tick_len.0))
    }

    /// Is delivery attempt `attempt` of `panel`'s probe report at tick
    /// `tick` lost?
    pub fn report_lost(&self, panel: usize, tick: usize, attempt: usize) -> bool {
        self.report_loss_rate > 0.0
            && self.draw(
                "report-loss",
                panel as u64,
                ((tick as u64) << 8) | (attempt as u64 & 0xFF),
            ) < self.report_loss_rate
    }

    /// Does `panel`'s PSU glitch during tick `tick`?
    pub fn psu_glitch(&self, panel: usize, tick: usize) -> bool {
        self.psu_glitch_rate > 0.0
            && self.draw("psu-glitch", panel as u64, tick as u64) < self.psu_glitch_rate
    }

    /// The bias transfer `panel`'s dead columns impose (healthy when no
    /// scripted column fault names the panel; a later fault on the same
    /// axis overrides an earlier one).
    pub fn bias_fault(&self, panel: usize) -> BiasFault {
        let mut fault = BiasFault::default();
        for cell in self.dead_columns.iter().filter(|c| c.panel == panel) {
            match cell.axis {
                Axis::X => fault.x = Some(cell.kind),
                Axis::Y => fault.y = Some(cell.kind),
            }
        }
        fault
    }

    /// Plays the bounded-retry loop for one searching panel's probe
    /// report: draws each delivery attempt, bills the backoff-widened
    /// timeout for every loss, and reports whether the attempts were
    /// exhausted (hold-last-good-bias).
    pub fn play_report_retries(&self, panel: usize, tick: usize) -> ReportFate {
        let max = self.retry.max_attempts.max(1);
        let mut lost = 0usize;
        let mut airtime = 0.0f64;
        for attempt in 0..max {
            if self.report_lost(panel, tick, attempt) {
                airtime += self.retry.timeout_for(self.report_timeout, attempt).0;
                lost += 1;
            } else {
                return ReportFate {
                    lost,
                    exhausted: false,
                    airtime,
                };
            }
        }
        ReportFate {
            lost,
            exhausted: true,
            airtime,
        }
    }
}

/// The splitmix64 finalizer: a strong 64-bit mix.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for panel in 0..4 {
            for tick in 0..50 {
                assert!(!plan.panel_out(panel, tick, Seconds(tick as f64)));
                assert!(!plan.psu_glitch(panel, tick));
                for attempt in 0..4 {
                    assert!(!plan.report_lost(panel, tick, attempt));
                }
            }
            assert!(plan.bias_fault(panel).is_healthy());
        }
        let fate = plan.play_report_retries(0, 0);
        assert_eq!(fate.lost, 0);
        assert!(!fate.exhausted);
        assert_eq!(fate.airtime, 0.0);
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::with_rates(7, 0.3, 0.3, 0.3);
        let b = FaultPlan::with_rates(7, 0.3, 0.3, 0.3);
        let c = FaultPlan::with_rates(8, 0.3, 0.3, 0.3);
        let mut diverged = false;
        for panel in 0..3 {
            for tick in 0..40 {
                let t = Seconds(tick as f64);
                assert_eq!(
                    a.panel_out(panel, tick, t),
                    b.panel_out(panel, tick, t),
                    "equal plans must agree"
                );
                assert_eq!(a.psu_glitch(panel, tick), b.psu_glitch(panel, tick));
                if a.panel_out(panel, tick, t) != c.panel_out(panel, tick, t) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "different seeds must draw different faults");
    }

    #[test]
    fn rates_zero_and_one_are_never_and_always() {
        let never = FaultPlan::with_rates(3, 0.0, 0.0, 0.0);
        let always = FaultPlan::with_rates(3, 1.0, 1.0, 1.0);
        for tick in 0..30 {
            assert!(!never.panel_out(0, tick, Seconds(tick as f64)));
            assert!(always.panel_out(0, tick, Seconds(tick as f64)));
            assert!(!never.report_lost(0, tick, 0));
            assert!(always.report_lost(0, tick, 0));
        }
        // Rate 1.0 exhausts every retry and bills the full backoff sum.
        let fate = always.play_report_retries(1, 5);
        assert!(fate.exhausted);
        assert_eq!(fate.lost, always.retry.max_attempts);
        // 0.1 + 0.2 + 0.4 + 0.8 with the default policy.
        assert!(
            (fate.airtime - 1.5).abs() < 1e-12,
            "airtime {}",
            fate.airtime
        );
    }

    #[test]
    fn intermediate_rates_fire_roughly_proportionally() {
        let plan = FaultPlan::with_rates(11, 0.25, 0.0, 0.0);
        let fired = (0..2000)
            .filter(|&tick| plan.panel_out(0, tick, Seconds(tick as f64)))
            .count();
        assert!(
            (350..650).contains(&fired),
            "25% rate fired {fired}/2000 times"
        );
    }

    #[test]
    fn scripted_windows_cover_exactly_their_span() {
        let mut plan = FaultPlan::none();
        plan.outages.push(PanelOutage {
            panel: 1,
            window: FaultWindow {
                start: Seconds(3.0),
                duration: Seconds(2.0),
            },
        });
        assert!(!plan.is_empty());
        assert!(!plan.panel_out(1, 2, Seconds(2.0)));
        assert!(plan.panel_out(1, 3, Seconds(3.0)));
        assert!(plan.panel_out(1, 4, Seconds(4.0)));
        assert!(!plan.panel_out(1, 5, Seconds(5.0)), "half-open window");
        assert!(!plan.panel_out(0, 3, Seconds(3.0)), "other panels live");
    }

    #[test]
    fn panel_revival_fires_exactly_once_after_the_window() {
        let mut plan = FaultPlan::none();
        plan.outages.push(PanelOutage {
            panel: 1,
            window: FaultWindow {
                start: Seconds(3.0),
                duration: Seconds(2.0),
            },
        });
        let dt = Seconds(1.0);
        // Up before the window, dark during, revived on the first tick
        // after — and only that tick.
        assert!(
            !plan.panel_revived(1, 3, Seconds(3.0), dt),
            "just went dark"
        );
        assert!(!plan.panel_revived(1, 4, Seconds(4.0), dt), "still dark");
        assert!(plan.panel_revived(1, 5, Seconds(5.0), dt), "heal tick");
        assert!(!plan.panel_revived(1, 6, Seconds(6.0), dt), "already back");
        // A never-faulted panel never revives, and tick 0 has no
        // previous tick to have healed from.
        assert!(!plan.panel_revived(0, 5, Seconds(5.0), dt));
        assert!(!plan.panel_revived(1, 0, Seconds(0.0), dt));
    }

    #[test]
    fn panel_failure_edge_fires_exactly_once_at_the_window_start() {
        let mut plan = FaultPlan::none();
        plan.outages.push(PanelOutage {
            panel: 1,
            window: FaultWindow {
                start: Seconds(3.0),
                duration: Seconds(2.0),
            },
        });
        let dt = Seconds(1.0);
        assert!(!plan.panel_failed(1, 2, Seconds(2.0), dt), "still up");
        assert!(plan.panel_failed(1, 3, Seconds(3.0), dt), "injection edge");
        assert!(
            !plan.panel_failed(1, 4, Seconds(4.0), dt),
            "dark but no new edge"
        );
        assert!(!plan.panel_failed(1, 5, Seconds(5.0), dt), "healed");
        assert!(!plan.panel_failed(0, 3, Seconds(3.0), dt), "other panels");
        // A window that covers tick 0 still reports its edge there.
        let mut from_start = FaultPlan::none();
        from_start.outages.push(PanelOutage {
            panel: 0,
            window: FaultWindow {
                start: Seconds(0.0),
                duration: Seconds(2.0),
            },
        });
        assert!(from_start.panel_failed(0, 0, Seconds(0.0), dt));
        assert!(!from_start.panel_failed(0, 1, Seconds(1.0), dt));
    }

    #[test]
    fn bias_faults_freeze_and_clamp() {
        let mut plan = FaultPlan::none();
        plan.dead_columns.push(CellFault {
            panel: 0,
            axis: Axis::X,
            kind: CellFaultKind::Stuck(Volts(4.0)),
        });
        plan.dead_columns.push(CellFault {
            panel: 0,
            axis: Axis::Y,
            kind: CellFaultKind::Clamped(Volts(10.0)),
        });
        let fault = plan.bias_fault(0);
        assert!(!fault.is_healthy());
        let out = fault.apply(BiasState::new(22.0, 25.0));
        assert_eq!(out.vx, Volts(4.0), "stuck axis ignores the command");
        assert_eq!(out.vy, Volts(10.0), "clamped axis saturates");
        let under = fault.apply(BiasState::new(1.0, 3.0));
        assert_eq!(under.vx, Volts(4.0));
        assert_eq!(under.vy, Volts(3.0), "below the clamp passes through");
        assert!(plan.bias_fault(1).is_healthy(), "other panels untouched");
        // The healthy transfer is the identity.
        let healthy = BiasFault::default();
        let bias = BiasState::new(13.5, 7.25);
        assert_eq!(healthy.apply(bias), bias);
    }
}
