//! Terminal rendering of experiment results: ASCII tables, series and
//! heatmaps for the `expts` binary and the examples.

use rfmath::stats::Histogram;

/// Renders a labelled data series as an aligned two-column table.
pub fn series_table(title: &str, x_label: &str, columns: &[(&str, &[f64])], xs: &[f64]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title}\n"));
    out.push_str(&format!("{x_label:>10}"));
    for (name, _) in columns {
        out.push_str(&format!("  {name:>18}"));
    }
    out.push('\n');
    for (i, &x) in xs.iter().enumerate() {
        out.push_str(&format!("{x:>10.3}"));
        for (_, ys) in columns {
            let v = ys.get(i).copied().unwrap_or(f64::NAN);
            out.push_str(&format!("  {v:>18.2}"));
        }
        out.push('\n');
    }
    out
}

/// Renders a histogram as a horizontal ASCII bar chart (PDF in %).
pub fn histogram_chart(title: &str, hist: &Histogram, max_width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} (n = {})\n", hist.total()));
    let pdf = hist.pdf_percent();
    let centers = hist.centers();
    let peak = pdf.iter().cloned().fold(0.0, f64::max).max(1e-9);
    for (c, p) in centers.iter().zip(&pdf) {
        if *p <= 0.0 {
            continue;
        }
        let width = ((p / peak) * max_width as f64).round() as usize;
        out.push_str(&format!(
            "{c:>8.1}  {:<w$}  {p:>5.1}%\n",
            "#".repeat(width.max(1)),
            w = max_width
        ));
    }
    out
}

/// Renders a row-major grid as an ASCII heatmap using a shade ramp.
/// `volts` labels both axes (columns = Vx, rows = Vy).
pub fn heatmap(title: &str, volts: &[f64], values: &[f64]) -> String {
    const RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let n = volts.len();
    assert_eq!(values.len(), n * n, "grid must be square over the axis");
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let mut out = String::new();
    out.push_str(&format!(
        "== {title}  [{lo:.1} .. {hi:.1} dBm]\n      Vx → "
    ));
    for &v in volts {
        out.push_str(&format!("{v:>4.0}"));
    }
    out.push('\n');
    for (iy, &vy) in volts.iter().enumerate() {
        out.push_str(&format!("Vy {vy:>5.0} | "));
        for ix in 0..n {
            let v = values[iy * n + ix];
            let t = ((v - lo) / span * (RAMP.len() - 1) as f64).round() as usize;
            let ch = RAMP[t.min(RAMP.len() - 1)];
            out.push_str(&format!("{ch}{ch}{ch} "));
        }
        out.push('\n');
    }
    out
}

/// Renders a sparkline of a time series (e.g. the respiration trace).
pub fn sparkline(title: &str, values: &[f64]) -> String {
    const TICKS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return format!("== {title}\n(empty)\n");
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let mut out = format!("== {title}  [{lo:.1} .. {hi:.1}]\n");
    for v in values {
        let t = ((v - lo) / span * (TICKS.len() - 1) as f64).round() as usize;
        out.push(TICKS[t.min(TICKS.len() - 1)]);
    }
    out.push('\n');
    out
}

/// Formats a named scalar result line.
pub fn metric(name: &str, value: f64, unit: &str) -> String {
    format!("{name:<44} {value:>10.2} {unit}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_table_aligns_columns() {
        let xs = [1.0, 2.0];
        let a = [10.0, 20.0];
        let b = [30.0, 40.0];
        let t = series_table("test", "x", &[("a", &a), ("b", &b)], &xs);
        assert!(t.contains("== test"));
        assert!(t.lines().count() == 4);
        assert!(t.contains("10.00"));
        assert!(t.contains("40.00"));
    }

    #[test]
    fn histogram_chart_scales_bars() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..9 {
            h.add(5.0);
        }
        h.add(1.0);
        let chart = histogram_chart("pdf", &h, 20);
        assert!(chart.contains('#'));
        // The dominant bin gets the full width.
        assert!(chart.contains(&"#".repeat(20)));
    }

    #[test]
    fn heatmap_spans_ramp() {
        let volts = [0.0, 15.0, 30.0];
        let values = [
            -60.0, -55.0, -50.0, //
            -45.0, -40.0, -35.0, //
            -30.0, -25.0, -20.0,
        ];
        let h = heatmap("grid", &volts, &values);
        assert!(h.contains('@'), "hottest cell uses the densest glyph");
        assert!(h.contains("Vy"));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn heatmap_validates_shape() {
        let _ = heatmap("bad", &[0.0, 1.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sparkline_handles_empty_and_flat() {
        assert!(sparkline("s", &[]).contains("empty"));
        let flat = sparkline("s", &[1.0, 1.0, 1.0]);
        assert!(flat.lines().count() == 2);
    }
}
