//! The event-stepped mobility simulation engine.
//!
//! [`MobilitySim::run`] advances a [`DynamicFleet`] tick by tick and
//! drives the panel scheduler as the *inner loop* of each tick, in one
//! of two modes:
//!
//! * **cold** ([`SimConfig::cold`]) — the memoryless baseline: every
//!   tick re-runs the full [`PanelScheduler::run`] (fresh plan caches,
//!   fresh link preparations, the full Algorithm 1 probe bill). This is
//!   what PR 4's API offers a dynamic world, and what the warm path is
//!   measured against.
//! * **warm** (default) — the incremental controller: plan caches,
//!   per-panel evaluators and per-device reference links persist across
//!   ticks; only the dirty set's links are re-prepared
//!   ([`crate::fleet::FleetEvaluator::update_device`]); panels whose
//!   devices did not move *reuse* the previous allocation outright (zero
//!   probes), and panels that did move re-optimize through
//!   [`crate::fleet::Scheduler::run_warm`] — a handful of probes seeded
//!   from the previous bias, widening to the cold search only on a
//!   genuine score regression.
//!
//! On top of scheduling, each tick settles two pieces of physical
//! accounting the static schedulers never had to face:
//!
//! * **panel handoff with hysteresis** ([`HandoffPolicy`]) — a device
//!   migrates to a better panel only after its measured reference-power
//!   margin exceeds `hysteresis_db` for `dwell_ticks` consecutive
//!   ticks, and every migration costs the affected panels a cold
//!   re-search (their sub-fleets changed);
//! * **PSU-aware tick budgets** — a bias change is an atomic
//!   switch-plus-settle interval gated by
//!   [`control::psu::PowerSupply::next_switch_time`]; probing airtime
//!   and settling are billed against the tick, changes that cannot
//!   complete are deferred into the next tick, and the per-tick duty
//!   cycle (and with it the reported throughput) is reduced
//!   accordingly. Re-optimizing faster than the probe budget allows
//!   starves the link — the reconfiguration-workload effect the
//!   programmable-environment literature centers on.
//!
//! A seeded [`FaultPlan`] ([`MobilitySim::with_faults`]) injects
//! hardware failures into the warm engine — whole-panel outages
//! (orphaned sub-fleets re-home onto surviving panels through the
//! handoff machinery), lost probe reports (bounded retry with
//! exponential backoff, then hold-last-good-bias), PSU settling
//! glitches, and stuck/clamped unit-cell columns (masked into each
//! panel's evaluator so the search re-optimizes around the defect) —
//! with honest degraded-duty accounting. An empty plan is bitwise
//! inert: the fault paths are never entered.

use std::time::Instant;

use control::psu::PowerSupply;
use control::sweep::WarmConfig;
use metasurface::evaluator::PlanCache;
use metasurface::response::SurfaceResponse;
use metasurface::stack::BiasState;
use propagation::capacity::duty_cycled_throughput;
use propagation::link::PreparedLink;
use rfmath::units::{Dbm, Seconds};

use crate::faults::FaultPlan;
use crate::fleet::{Fleet, FleetEvaluator, FleetOutcome, Policy};
use crate::panels::{
    PanelAllocation, PanelArray, PanelOutcome, PanelScheduler, RevivalPolicy, REFERENCE_BIAS,
};
use crate::sim::mobility::DynamicFleet;
use crate::telemetry::{RecorderHandle, TelemetryEvent};

/// Device→panel handoff policy: hysteresis in measured margin plus a
/// dwell requirement, so a device on a sector boundary does not flap
/// between panels on every fade.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HandoffPolicy {
    /// Reference-power margin (dB) a candidate panel must hold over the
    /// device's current panel before a migration is even considered.
    /// The comparison is strict, so identical panels (a uniform array)
    /// never trigger handoffs regardless of this setting.
    pub hysteresis_db: f64,
    /// Consecutive *moving* ticks the margin must persist before the
    /// device actually migrates (values below 1 behave as 1). Only
    /// devices in a tick's dirty set are considered at all — a parked
    /// device keeps its panel regardless of margin (re-homing static
    /// devices is the assignment policy's job, and the zero-motion
    /// equivalence contract depends on it), and parking resets the
    /// streak.
    pub dwell_ticks: usize,
    /// Re-admission policy when a faulted panel heals.
    /// [`RevivalPolicy::Immediate`] re-homes every device whose best
    /// live panel came back *this tick* without waiting out hysteresis
    /// — the outage is over, there is nothing to flap back to.
    /// [`RevivalPolicy::Hysteresis`] leaves re-admission to the
    /// ordinary handoff loop, which never touches parked devices: a
    /// stationary fleet stays stranded on its fallback panels forever.
    pub revival: RevivalPolicy,
}

impl Default for HandoffPolicy {
    fn default() -> Self {
        Self {
            hysteresis_db: 2.0,
            dwell_ticks: 2,
            revival: RevivalPolicy::Immediate,
        }
    }
}

/// Simulation-engine configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Tick length — how often the controller re-examines the world.
    pub tick: Seconds,
    /// Warm-start configuration; `None` selects the cold (memoryless)
    /// baseline that re-runs the full scheduler every tick.
    pub warm: Option<WarmConfig>,
    /// Handoff hysteresis (warm mode only; the cold baseline re-assigns
    /// from scratch every tick, which is exactly the flapping behavior
    /// hysteresis exists to prevent).
    pub handoff: HandoffPolicy,
    /// Allocation-churn baseline for A/B benchmarking: when set, the
    /// warm engine rebinds reference links through the allocating
    /// [`PreparedLink::rebind`] path and forces every panel evaluator
    /// onto the reference (AoS) batch kernel instead of the SoA fast
    /// path. Results are bit-identical either way — only the
    /// steady-state allocation and vectorization behavior differs —
    /// which is exactly what makes it an honest baseline.
    pub churn_baseline: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            tick: Seconds(1.0),
            warm: Some(WarmConfig::paper_default()),
            handoff: HandoffPolicy::default(),
            churn_baseline: false,
        }
    }
}

impl SimConfig {
    /// The cold (memoryless, full re-search) baseline configuration.
    pub fn cold() -> Self {
        Self {
            warm: None,
            ..Self::default()
        }
    }

    /// Sets the tick length.
    pub fn with_tick(mut self, tick: Seconds) -> Self {
        self.tick = tick;
        self
    }

    /// Sets the handoff policy.
    pub fn with_handoff(mut self, handoff: HandoffPolicy) -> Self {
        self.handoff = handoff;
        self
    }

    /// Selects the allocation-churn baseline (see
    /// [`SimConfig::churn_baseline`]). Benchmarks use this to measure
    /// what the arena rebinds and the SoA batch kernel actually buy.
    pub fn with_churn_baseline(mut self, on: bool) -> Self {
        self.churn_baseline = on;
        self
    }
}

/// Everything one simulation tick produced.
#[derive(Clone, Debug)]
pub struct TickOutcome {
    /// Simulation time at the tick's start.
    pub t: Seconds,
    /// Devices whose link changed at this clock edge (the dirty set).
    pub moved: Vec<usize>,
    /// Devices migrated to another panel this tick.
    pub handoffs: usize,
    /// The tick's scheduling decision: assignment, proposed per-panel
    /// biases, per-device service at those biases. Its `probes` field
    /// counts what was spent *this* tick — panels that reused their
    /// previous allocation contribute nothing, which is the point of
    /// the warm engine.
    pub outcome: PanelOutcome,
    /// The bias actually on each panel's rails at the tick's end (a
    /// deferred change leaves the previous bias in force).
    pub applied: Vec<BiasState>,
    /// Serving duty per panel: the fraction of the tick left after
    /// probing airtime, rail settling and deferred-switch spillover.
    pub panel_duty: Vec<f64>,
    /// Bias changes still pending on the rails at the tick's end.
    pub deferred_switches: usize,
    /// Links fully re-prepared this tick (walked devices, membership
    /// rebuilds).
    pub links_reprepared: usize,
    /// Links cheaply rebound this tick (rotations, blockage edges —
    /// cached scatter reused).
    pub links_rebound: usize,
    /// Panels that ran the full cold search this tick.
    pub cold_panels: usize,
    /// Panels that ran a warm refinement this tick.
    pub warm_panels: usize,
    /// Populated panels that reused their previous allocation outright.
    pub reused_panels: usize,
    /// Panels dark this tick under the fault plan (outage windows or
    /// stochastic outages; the all-panels-out guard keeps one alive).
    pub outaged_panels: usize,
    /// Devices re-homed off a dark panel this tick (fault recovery, not
    /// counted as handoffs — no hysteresis was involved).
    pub fault_reassignments: usize,
    /// Devices re-admitted onto a panel that healed this tick
    /// ([`RevivalPolicy::Immediate`]; like fault recovery, not counted
    /// as handoffs — no hysteresis was involved).
    pub revival_readmissions: usize,
    /// Probe-report deliveries lost this tick (each billed its
    /// backoff-widened timeout as airtime).
    pub reports_lost: usize,
    /// Panels whose report retries were exhausted this tick (the
    /// controller held the last good bias).
    pub reports_exhausted: usize,
    /// PSU settling glitches this tick (each billed extra airtime).
    pub psu_glitches: usize,
    /// Worst served power across the fleet at the *applied* biases, dBm
    /// (`-∞` for an empty fleet).
    pub served_min_power_dbm: f64,
    /// Aggregate duty-cycled throughput at the applied biases, bit/s/Hz
    /// — the honest number: reconfiguration airtime is paid for here.
    pub served_throughput_bits_hz: f64,
    /// Wall-clock the controller spent computing this tick, ms (the
    /// quantity the warm-vs-cold bench compares).
    pub wall_ms: f64,
}

/// A completed simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-tick outcomes, in time order.
    pub ticks: Vec<TickOutcome>,
    /// Total handoffs across the run.
    pub handoffs: usize,
    /// Total controller wall-clock, ms.
    pub wall_ms: f64,
}

impl SimReport {
    /// Mean worst-device served power across ticks, dBm.
    pub fn mean_served_min_power_dbm(&self) -> f64 {
        if self.ticks.is_empty() {
            return f64::NEG_INFINITY;
        }
        self.ticks
            .iter()
            .map(|t| t.served_min_power_dbm)
            .sum::<f64>()
            / self.ticks.len() as f64
    }

    /// Mean serving duty, device-weighted (each device contributes its
    /// own panel's duty, each tick).
    pub fn mean_duty(&self) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for tick in &self.ticks {
            for &panel in &tick.outcome.assignment {
                total += tick.panel_duty[panel];
                n += 1;
            }
        }
        if n == 0 {
            return 0.0;
        }
        total / n as f64
    }

    /// Total bias states probed across the run.
    pub fn total_probes(&self) -> usize {
        self.ticks.iter().map(|t| t.outcome.probes).sum()
    }

    /// Total full link re-preparations across the run.
    pub fn total_links_reprepared(&self) -> usize {
        self.ticks.iter().map(|t| t.links_reprepared).sum()
    }

    /// Total cheap link rebinds across the run.
    pub fn total_links_rebound(&self) -> usize {
        self.ticks.iter().map(|t| t.links_rebound).sum()
    }

    /// Total panel×tick outages across the run.
    pub fn total_outaged_panel_ticks(&self) -> usize {
        self.ticks.iter().map(|t| t.outaged_panels).sum()
    }

    /// Total fault-recovery re-homings across the run.
    pub fn total_fault_reassignments(&self) -> usize {
        self.ticks.iter().map(|t| t.fault_reassignments).sum()
    }

    /// Total healed-panel re-admissions across the run.
    pub fn total_revival_readmissions(&self) -> usize {
        self.ticks.iter().map(|t| t.revival_readmissions).sum()
    }

    /// Total probe-report deliveries lost across the run.
    pub fn total_reports_lost(&self) -> usize {
        self.ticks.iter().map(|t| t.reports_lost).sum()
    }

    /// Total report-retry exhaustions (held biases) across the run.
    pub fn total_reports_exhausted(&self) -> usize {
        self.ticks.iter().map(|t| t.reports_exhausted).sum()
    }

    /// Total PSU settling glitches across the run.
    pub fn total_psu_glitches(&self) -> usize {
        self.ticks.iter().map(|t| t.psu_glitches).sum()
    }
}

/// How one panel's allocation was produced this tick.
#[derive(Clone, Copy, Debug, PartialEq)]
enum SearchKind {
    Reused,
    Warm,
    Cold,
}

/// Persistent per-panel state of the engine (the PSU half is live in
/// both modes; the evaluator half only in warm mode).
struct PanelState {
    members: Vec<usize>,
    subfleet: Fleet,
    evaluator: Option<FleetEvaluator>,
    psu: PowerSupply,
    applied: BiasState,
    /// An in-flight bias change: target plus remaining switch+settle
    /// seconds that spilled past the previous tick.
    pending: Option<(BiasState, f64)>,
    prev: Option<FleetOutcome>,
    moved: bool,
    membership_changed: bool,
}

impl PanelState {
    fn new(placeholder: &Fleet) -> Self {
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        Self {
            members: Vec::new(),
            subfleet: Fleet::new(placeholder.design.clone()),
            evaluator: None,
            psu,
            applied: BiasState::new(0.0, 0.0),
            pending: None,
            prev: None,
            moved: false,
            membership_changed: false,
        }
    }
}

/// PSU bookkeeping for one panel over one tick: complete any pending
/// reconfiguration first, bill the tick's probing airtime, then attempt
/// the freshly proposed change. A change is an atomic switch+settle
/// interval: the switch instant is gated by the supply's
/// `next_switch_time` rate limit, and if the settle cannot complete
/// within the tick the whole change is deferred (the old bias keeps
/// serving). Returns `(seconds of the tick consumed, changes deferred)`.
fn settle_psu(
    state: &mut PanelState,
    tick_start: f64,
    tick_len: f64,
    search_airtime: f64,
    proposed: Option<BiasState>,
) -> (f64, usize) {
    let settling = state.psu.settling.0;
    let mut used = 0.0f64;

    // 1. An in-flight change from a previous tick completes first.
    if let Some((target, rem)) = state.pending.take() {
        let switch_at =
            (tick_start + (rem - settling).max(0.0)).max(state.psu.next_switch_time().0);
        let completed = switch_at + settling - tick_start;
        if completed <= tick_len {
            state
                .psu
                .set_bias(target.vx, target.vy, Seconds(switch_at))
                .expect("pending switch lands at a legal time");
            state.applied = target;
            used = completed;
        } else {
            state.pending = Some((target, completed - tick_len));
            return (tick_len, 1);
        }
    }

    // 2. Probing airtime of this tick's search (zero on a reused tick).
    used = (used + search_airtime).min(tick_len);

    // 3. The freshly proposed change, if it differs from the rails.
    if let Some(target) = proposed {
        if target != state.applied {
            let switch_at = (tick_start + used).max(state.psu.next_switch_time().0);
            let completed = switch_at + settling - tick_start;
            if completed <= tick_len {
                state
                    .psu
                    .set_bias(target.vx, target.vy, Seconds(switch_at))
                    .expect("proposed switch lands at a legal time");
                state.applied = target;
                return (completed.clamp(0.0, tick_len), 0);
            }
            state.pending = Some((target, completed - tick_len));
            return (tick_len, 1);
        }
    }
    (used.clamp(0.0, tick_len), 0)
}

/// The event-stepped mobility simulator: a [`PanelScheduler`] driven
/// tick by tick over a [`DynamicFleet`] and a [`PanelArray`], with
/// warm-start re-optimization, handoff hysteresis and PSU-honest duty
/// accounting.
#[derive(Clone, Debug)]
pub struct MobilitySim {
    /// The per-tick scheduling core (policy, sweep, and the assignment
    /// policy used on the first tick). Must be a shared-bias policy —
    /// time division has no single rail state to hold between ticks.
    pub scheduler: PanelScheduler,
    /// Engine configuration.
    pub config: SimConfig,
    /// The fault plan the run degrades through ([`FaultPlan::none`] by
    /// default — bitwise inert).
    pub faults: FaultPlan,
    /// Telemetry sink for per-tick phase spans
    /// (`sim.phase.advance/reopt/settle/serve`), fault edges, handoffs,
    /// retries and PSU deferrals (see
    /// [`crate::telemetry::TelemetryEvent`]). The default
    /// [`RecorderHandle::null`] keeps every run bitwise identical to an
    /// uninstrumented simulator.
    pub recorder: RecorderHandle,
}

impl MobilitySim {
    /// A simulator around a scheduler and a configuration (fault-free).
    pub fn new(scheduler: PanelScheduler, config: SimConfig) -> Self {
        Self {
            scheduler,
            config,
            faults: FaultPlan::none(),
            recorder: RecorderHandle::null(),
        }
    }

    /// Installs a fault plan. Only the warm engine can degrade through
    /// faults (`run` panics on a faulted cold baseline); an empty plan
    /// leaves every run bitwise identical to a fault-free simulator.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a telemetry recorder the tick loop reports into. The
    /// scheduler shares it, so per-panel sweep spans land in the same
    /// ring as the tick-phase and fault events.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.scheduler.recorder = recorder.clone();
        self.recorder = recorder;
        self
    }

    /// Runs `ticks` clock edges, advancing `fleet` and re-optimizing the
    /// array each tick. The fleet is mutated in place (it *is* the world
    /// state); construct a fresh fleet to run a second scenario.
    ///
    /// # Panics
    /// Panics on zero ticks, a non-positive tick length, a
    /// `TimeDivision` base policy, or a non-empty fault plan on the
    /// cold baseline.
    pub fn run(&self, fleet: &mut DynamicFleet, array: &PanelArray, ticks: usize) -> SimReport {
        assert!(ticks >= 1, "need at least one tick");
        assert!(self.config.tick.0 > 0.0, "tick length must be positive");
        assert!(
            !matches!(self.scheduler.base.policy, Policy::TimeDivision),
            "the mobility simulator serves shared-bias policies: time division \
             has no single rail state to hold between ticks"
        );
        assert!(
            self.config.warm.is_some() || self.faults.is_empty(),
            "fault injection requires the warm engine: the cold baseline keeps \
             no persistent state to degrade through"
        );
        assert!(
            self.scheduler.joint.is_none(),
            "the mobility simulator drives the independent per-panel search: \
             joint multi-surface refinement is a static-scheduler mode"
        );
        match self.config.warm {
            Some(warm) => self.run_warm_mode(fleet, array, ticks, &warm),
            None => self.run_cold_mode(fleet, array, ticks),
        }
    }

    /// The memoryless baseline: every tick pays the full PR-4 bill —
    /// fresh plan caches, fresh link preparations, full Algorithm 1.
    fn run_cold_mode(
        &self,
        fleet: &mut DynamicFleet,
        array: &PanelArray,
        ticks: usize,
    ) -> SimReport {
        let mut states: Vec<PanelState> = (0..array.len())
            .map(|_| PanelState::new(fleet.fleet()))
            .collect();
        let mut out = Vec::with_capacity(ticks);
        let mut wall_total = 0.0f64;
        let recorder = &self.recorder;
        let traced = recorder.enabled();
        for i in 0..ticks {
            let started = Instant::now();
            recorder.set_tick(i as u64);
            let t = Seconds(i as f64 * self.config.tick.0);
            let moved = {
                let _span = recorder.span("sim.phase.advance_ns");
                fleet.advance_to(t)
            };
            if traced {
                recorder.emit(TelemetryEvent::TickPhase {
                    phase: "advance",
                    items: moved.len(),
                });
            }
            let reopt_span = recorder.span("sim.phase.reopt_ns");
            let outcome = self.scheduler.run(fleet.fleet(), array);
            drop(reopt_span);
            let cold_panels = outcome
                .per_panel
                .iter()
                .filter(|p| !p.devices.is_empty())
                .count();
            let airtimes: Vec<f64> = outcome
                .per_panel
                .iter()
                .map(|p| p.outcome.elapsed.0)
                .collect();
            if traced {
                recorder.emit(TelemetryEvent::TickPhase {
                    phase: "reopt",
                    items: cold_panels,
                });
            }
            let outaged = vec![false; array.len()];
            let mut tick_out = self.settle_tick(
                fleet.fleet(),
                array,
                &mut states,
                t,
                moved,
                0,
                outcome,
                &airtimes,
                &outaged,
                started,
            );
            tick_out.links_reprepared = fleet.len();
            tick_out.cold_panels = cold_panels;
            wall_total += tick_out.wall_ms;
            out.push(tick_out);
        }
        SimReport {
            ticks: out,
            handoffs: 0,
            wall_ms: wall_total,
        }
    }

    /// The incremental engine: persistent caches, evaluators and
    /// reference links; dirty-set link updates; hysteresis handoff;
    /// reuse/warm/cold scheduling per panel.
    fn run_warm_mode(
        &self,
        fleet: &mut DynamicFleet,
        array: &PanelArray,
        ticks: usize,
        warm: &WarmConfig,
    ) -> SimReport {
        let caches = array.plan_caches();
        let mut states: Vec<PanelState> = (0..array.len())
            .map(|_| PanelState::new(fleet.fleet()))
            .collect();
        let mut assignment: Vec<usize> = Vec::new();
        let mut streaks: Vec<(usize, usize)> = vec![(0, 0); fleet.len()];
        let mut ref_links: Vec<Vec<PreparedLink>> = Vec::new();
        // Reference responses per panel × carrier (bias-independent:
        // computed once for the whole run).
        let mut ref_responses: Vec<Vec<(u64, SurfaceResponse)>> = vec![Vec::new(); array.len()];

        let mut out = Vec::with_capacity(ticks);
        let mut handoffs_total = 0usize;
        let mut wall_total = 0.0f64;
        let faults_active = !self.faults.is_empty();
        // Steady-state scratch reused across ticks — the tick loop
        // allocates only for the outcome it returns.
        let mut outaged = vec![false; array.len()];
        let mut is_dirty = vec![false; fleet.len()];
        let mut kinds: Vec<SearchKind> = Vec::with_capacity(array.len());
        let mut airtimes: Vec<f64> = Vec::with_capacity(array.len());
        let mut probe_scratch: Vec<propagation::rays::Path> = Vec::new();
        let recorder = &self.recorder;
        let traced = recorder.enabled();
        let mut prev_outaged = vec![false; array.len()];
        for i in 0..ticks {
            let started = Instant::now();
            recorder.set_tick(i as u64);
            let t = Seconds(i as f64 * self.config.tick.0);
            let advance_span = recorder.span("sim.phase.advance_ns");
            let moved = fleet.advance_to(t);
            let mut reprepared = 0usize;
            let mut rebound = 0usize;

            // Which panels are dark this tick. A controller with no
            // surviving panel serves nobody at all, so when the plan
            // would take out every panel the lowest-indexed one is kept
            // alive: the fleet degrades instead of vanishing.
            outaged.fill(false);
            if faults_active {
                for (k, out) in outaged.iter_mut().enumerate() {
                    *out = self.faults.panel_out(k, i, t);
                }
                if !outaged.is_empty() && outaged.iter().all(|&o| o) {
                    outaged[0] = false;
                }
            }
            let outaged_panels = outaged.iter().filter(|&&o| o).count();
            // Outage *edges* (injection and recovery) come from
            // comparing against the previous tick's dark set — the plan
            // itself only answers "dark now?".
            if traced {
                for (k, (&now, &was)) in outaged.iter().zip(prev_outaged.iter()).enumerate() {
                    if now && !was {
                        recorder.emit(TelemetryEvent::FaultInjected {
                            panel: k,
                            kind: "outage",
                        });
                    } else if was && !now {
                        recorder.emit(TelemetryEvent::FaultRecovered { panel: k });
                    }
                }
            }
            prev_outaged.copy_from_slice(&outaged);
            let mut reassignments = 0usize;
            let mut revivals = 0usize;

            if i == 0 {
                // First tick: run the assignment policy and build every
                // persistent structure. All panels search cold, exactly
                // like the static PanelScheduler would.
                assignment =
                    array.assign_with_caches(fleet.fleet(), &self.scheduler.assignment, &caches);
                for (k, responses) in ref_responses.iter_mut().enumerate() {
                    for device in fleet.fleet().devices() {
                        let bits = device.scenario.frequency.0.to_bits();
                        if !responses.iter().any(|(b, _)| *b == bits) {
                            let plan = PanelArray::cache_for(&caches, &array.panels()[k].design)
                                .plan(device.scenario.frequency);
                            let response = SurfaceResponse::new(
                                plan.frequency(),
                                plan.response(REFERENCE_BIAS),
                            );
                            responses.push((bits, response));
                        }
                    }
                }
                ref_links = fleet
                    .fleet()
                    .devices()
                    .iter()
                    .map(|device| {
                        let base = PreparedLink::new(device.scenario.link());
                        array
                            .panels()
                            .iter()
                            .map(|p| {
                                base.with_surface_placement(
                                    p.deployment_for(device.scenario.deployment),
                                )
                            })
                            .collect()
                    })
                    .collect();
                reprepared += fleet.len();
                // A panel dark at t = 0 never receives its sub-fleet:
                // the policy's picks re-home to surviving panels before
                // anything is built on top of the assignment.
                if outaged_panels > 0 {
                    for d in 0..fleet.len() {
                        if outaged[assignment[d]] {
                            assignment[d] = Self::best_surviving_panel(
                                fleet.fleet(),
                                d,
                                &outaged,
                                &ref_links,
                                &ref_responses,
                            );
                            reassignments += 1;
                        }
                    }
                }
                Self::rebuild_panels(
                    fleet.fleet(),
                    array,
                    &caches,
                    &assignment,
                    &mut states,
                    &(0..array.len()).collect::<Vec<_>>(),
                    &self.faults,
                    self.config.churn_baseline,
                );
            } else {
                // Refresh the per-device reference links for the dirty
                // set (the handoff margins live on them); rebinds reuse
                // cached scatter whenever the move allows.
                for &d in &moved {
                    let device = &fleet.fleet().devices()[d];
                    for (k, panel) in array.panels().iter().enumerate() {
                        let mut link = device.scenario.link();
                        link.deployment = panel.deployment_for(device.scenario.deployment);
                        if self.config.churn_baseline {
                            ref_links[d][k] = ref_links[d][k].rebind(link);
                        } else {
                            // Arena path: the prepared slot is reused in
                            // place — a reusable move touches zero heap.
                            ref_links[d][k].rebind_in_place(link);
                        }
                    }
                }
            }
            drop(advance_span);
            if traced {
                recorder.emit(TelemetryEvent::TickPhase {
                    phase: "advance",
                    items: moved.len(),
                });
            }
            let reopt_span = recorder.span("sim.phase.reopt_ns");

            // Fault recovery first: a device stranded on a panel that
            // just went dark re-homes to its best surviving panel
            // immediately — no hysteresis, no dwell; there is nothing to
            // flap back to. The affected panels rebuild like a handoff
            // would, and the move resets the device's dwell streak.
            if i > 0 && outaged_panels > 0 && !fleet.is_empty() {
                let mut changed: Vec<usize> = Vec::new();
                for d in 0..fleet.len() {
                    let cur = assignment[d];
                    if !outaged[cur] {
                        continue;
                    }
                    let target = Self::best_surviving_panel(
                        fleet.fleet(),
                        d,
                        &outaged,
                        &ref_links,
                        &ref_responses,
                    );
                    changed.push(cur);
                    changed.push(target);
                    assignment[d] = target;
                    streaks[d] = (target, 0);
                    reassignments += 1;
                    if traced {
                        recorder.emit(TelemetryEvent::Handoff {
                            device: d,
                            from_panel: cur,
                            to_panel: target,
                        });
                    }
                }
                if !changed.is_empty() {
                    changed.sort_unstable();
                    changed.dedup();
                    reprepared += Self::rebuild_panels(
                        fleet.fleet(),
                        array,
                        &caches,
                        &assignment,
                        &mut states,
                        &changed,
                        &self.faults,
                        self.config.churn_baseline,
                    );
                }
            }

            // Panel revival: the inverse of fault recovery. A parked
            // device never re-enters the handoff loop (its streak is
            // reset every tick it does not move), so once an outage
            // strands a stationary sub-fleet on fallback panels, the
            // healed panel would stay empty forever. Under
            // `RevivalPolicy::Immediate`, any device whose best live
            // panel healed *this tick* re-homes at once — no
            // hysteresis, no dwell; the outage it was dodging is over.
            if i > 0
                && faults_active
                && self.config.handoff.revival == RevivalPolicy::Immediate
                && !fleet.is_empty()
            {
                let healed: Vec<usize> = (0..array.len())
                    .filter(|&k| {
                        !outaged[k] && self.faults.panel_revived(k, i, t, self.config.tick)
                    })
                    .collect();
                if traced {
                    for &k in &healed {
                        recorder.emit(TelemetryEvent::Revival { panel: k });
                    }
                }
                if !healed.is_empty() {
                    let mut changed: Vec<usize> = Vec::new();
                    for d in 0..fleet.len() {
                        let cur = assignment[d];
                        if outaged[cur] {
                            // Fault recovery above already re-homed it.
                            continue;
                        }
                        let target = Self::best_surviving_panel(
                            fleet.fleet(),
                            d,
                            &outaged,
                            &ref_links,
                            &ref_responses,
                        );
                        if target == cur || !healed.contains(&target) {
                            continue;
                        }
                        changed.push(cur);
                        changed.push(target);
                        assignment[d] = target;
                        streaks[d] = (target, 0);
                        revivals += 1;
                        if traced {
                            recorder.emit(TelemetryEvent::Handoff {
                                device: d,
                                from_panel: cur,
                                to_panel: target,
                            });
                        }
                    }
                    if !changed.is_empty() {
                        changed.sort_unstable();
                        changed.dedup();
                        reprepared += Self::rebuild_panels(
                            fleet.fleet(),
                            array,
                            &caches,
                            &assignment,
                            &mut states,
                            &changed,
                            &self.faults,
                            self.config.churn_baseline,
                        );
                    }
                }
            }

            // Handoff decisions: after the first tick, with somewhere to
            // go, and only for devices that actually moved this tick —
            // a parked device keeps its panel no matter how its initial
            // assignment measures up (re-homing static devices is the
            // assignment policy's job at tick 0, and touching them here
            // would break the zero-motion warm==cold contract on
            // distributed arrays). Parked devices also reset their
            // dwell streaks: "dwell" counts consecutive *moving* ticks.
            let mut handoffs = 0usize;
            if i > 0 && array.len() >= 2 && !fleet.is_empty() {
                is_dirty.fill(false);
                for &d in &moved {
                    is_dirty[d] = true;
                }
                let mut changed_panels: Vec<usize> = Vec::new();
                for d in 0..fleet.len() {
                    if !is_dirty[d] {
                        streaks[d] = (assignment[d], 0);
                        continue;
                    }
                    let bits = fleet.fleet().devices()[d].scenario.frequency.0.to_bits();
                    let churn_baseline = self.config.churn_baseline;
                    let probe_scratch = &mut probe_scratch;
                    let mut power_on = |k: usize| {
                        let response = ref_responses[k]
                            .iter()
                            .find(|(b, _)| *b == bits)
                            .map(|(_, r)| r)
                            .expect("reference responses prebuilt for every carrier");
                        if churn_baseline {
                            // Baseline arm: the allocating probe the
                            // engine used before the scratch fast path.
                            ref_links[d][k].received_dbm_with(Some(response)).0
                        } else {
                            ref_links[d][k]
                                .received_dbm_scratch(Some(response), probe_scratch)
                                .0
                        }
                    };
                    let cur = assignment[d];
                    let cur_power = power_on(cur);
                    let mut preferred = cur;
                    let mut best = f64::NEG_INFINITY;
                    for (k, &out) in outaged.iter().enumerate() {
                        if k == cur || out {
                            continue;
                        }
                        let p = power_on(k);
                        if p > best {
                            best = p;
                            preferred = k;
                        }
                    }
                    if preferred != cur && best - cur_power > self.config.handoff.hysteresis_db {
                        streaks[d] = if streaks[d].0 == preferred {
                            (preferred, streaks[d].1 + 1)
                        } else {
                            (preferred, 1)
                        };
                        if streaks[d].1 >= self.config.handoff.dwell_ticks.max(1) {
                            changed_panels.push(cur);
                            changed_panels.push(preferred);
                            assignment[d] = preferred;
                            streaks[d] = (preferred, 0);
                            handoffs += 1;
                            if traced {
                                recorder.emit(TelemetryEvent::Handoff {
                                    device: d,
                                    from_panel: cur,
                                    to_panel: preferred,
                                });
                            }
                        }
                    } else {
                        streaks[d] = (cur, 0);
                    }
                }
                handoffs_total += handoffs;
                if !changed_panels.is_empty() {
                    changed_panels.sort_unstable();
                    changed_panels.dedup();
                    reprepared += Self::rebuild_panels(
                        fleet.fleet(),
                        array,
                        &caches,
                        &assignment,
                        &mut states,
                        &changed_panels,
                        &self.faults,
                        self.config.churn_baseline,
                    );
                }
            }

            // Incremental link updates for moved devices whose panel
            // membership did not change.
            if i > 0 {
                for &d in &moved {
                    let k = assignment[d];
                    let state = &mut states[k];
                    if state.membership_changed {
                        continue; // just rebuilt from scratch
                    }
                    let sub = state
                        .members
                        .iter()
                        .position(|&m| m == d)
                        .expect("assignment and membership agree");
                    state.subfleet.device_mut(sub).scenario =
                        array.panels()[k].scenario_for(&fleet.fleet().devices()[d].scenario);
                    let member = state.subfleet.devices()[sub].clone();
                    let cheap = state
                        .evaluator
                        .as_mut()
                        .expect("populated panel has an evaluator")
                        .update_device(sub, &member);
                    if cheap {
                        rebound += 1;
                    } else {
                        reprepared += 1;
                    }
                    state.moved = true;
                }
            }

            // Per-panel scheduling: reuse, warm-refine, or cold.
            kinds.clear();
            airtimes.clear();
            let mut panel_outcomes: Vec<FleetOutcome> = Vec::with_capacity(array.len());
            let mut probes = 0usize;
            let mut reports_lost = 0usize;
            let mut reports_exhausted = 0usize;
            let mut psu_glitches = 0usize;
            for (k, state) in states.iter_mut().enumerate() {
                let scheduler = self.scheduler.panel_scheduler(&state.members);
                let (mut outcome, mut kind) = match (&state.evaluator, &state.prev) {
                    (None, _) => (FleetOutcome::empty(scheduler.policy), SearchKind::Reused),
                    (Some(_), Some(prev)) if !state.moved => (prev.clone(), SearchKind::Reused),
                    (Some(evaluator), Some(prev)) => (
                        scheduler.run_warm(&state.subfleet, evaluator, prev, warm),
                        SearchKind::Warm,
                    ),
                    (Some(evaluator), None) => (
                        scheduler.run_with_evaluator(&state.subfleet, evaluator),
                        SearchKind::Cold,
                    ),
                };
                let mut airtime = if kind == SearchKind::Reused {
                    0.0
                } else {
                    outcome.elapsed.0
                };
                if traced && kind != SearchKind::Reused {
                    recorder.emit(TelemetryEvent::SweepSpan {
                        panel: k,
                        kind: if kind == SearchKind::Warm {
                            "warm"
                        } else {
                            "cold"
                        },
                        probes: outcome.probes,
                    });
                }
                if kind != SearchKind::Reused {
                    // The probe bill is spent over the air whether or
                    // not the controller ever hears the scores.
                    probes += outcome.probes;
                    if faults_active {
                        if self.faults.psu_glitch(k, i) {
                            psu_glitches += 1;
                            airtime += self.faults.psu_glitch_settling.0;
                            if traced {
                                recorder.emit(TelemetryEvent::FaultInjected {
                                    panel: k,
                                    kind: "psu_glitch",
                                });
                            }
                        }
                        let fate = self.faults.play_report_retries(k, i);
                        reports_lost += fate.lost;
                        airtime += fate.airtime;
                        if traced && (fate.lost > 0 || fate.exhausted) {
                            recorder.emit(TelemetryEvent::Retry {
                                panel: k,
                                attempt: fate.lost,
                                exhausted: fate.exhausted,
                            });
                        }
                        if fate.exhausted {
                            reports_exhausted += 1;
                            if let Some(prev) = &state.prev {
                                // Every retry lost: the controller never
                                // heard a usable report, so it holds the
                                // last allocation it scored instead of
                                // applying blind biases. (With nothing
                                // to hold — the panel's first search —
                                // the fresh result is applied anyway.)
                                outcome = prev.clone();
                                kind = SearchKind::Reused;
                            }
                        }
                    }
                    if kind != SearchKind::Reused {
                        state.prev = Some(outcome.clone());
                    }
                }
                state.moved = false;
                state.membership_changed = false;
                kinds.push(kind);
                airtimes.push(airtime);
                panel_outcomes.push(outcome);
            }
            drop(reopt_span);
            if traced {
                recorder.emit(TelemetryEvent::TickPhase {
                    phase: "reopt",
                    items: kinds.iter().filter(|k| **k != SearchKind::Reused).count(),
                });
            }

            // Assemble the tick's scheduling decision exactly like the
            // static scheduler does.
            let mut services = vec![None; fleet.len()];
            let mut per_panel = Vec::with_capacity(array.len());
            let mut elapsed = 0.0f64;
            for (k, outcome) in panel_outcomes.into_iter().enumerate() {
                if kinds[k] != SearchKind::Reused {
                    elapsed = elapsed.max(outcome.elapsed.0);
                }
                for (service, &d) in outcome.per_device.iter().zip(&states[k].members) {
                    services[d] = Some(service.clone());
                }
                per_panel.push(PanelAllocation {
                    panel: array.panels()[k].label.clone(),
                    devices: states[k].members.clone(),
                    outcome,
                });
            }
            let per_device: Vec<_> = services
                .into_iter()
                .map(|s| s.expect("every device is assigned to exactly one panel"))
                .collect();
            let mut outcome = PanelOutcome {
                assignment: assignment.clone(),
                per_panel,
                per_device,
                probes,
                elapsed: Seconds(elapsed),
                score: f64::NEG_INFINITY,
                joint: None,
            };
            outcome.score = outcome.min_power_dbm();

            let cold_panels = kinds.iter().filter(|k| **k == SearchKind::Cold).count();
            let warm_panels = kinds.iter().filter(|k| **k == SearchKind::Warm).count();
            let reused_panels = kinds
                .iter()
                .zip(&states)
                .filter(|(k, s)| **k == SearchKind::Reused && s.evaluator.is_some())
                .count();
            let mut tick_out = self.settle_tick(
                fleet.fleet(),
                array,
                &mut states,
                t,
                moved,
                handoffs,
                outcome,
                &airtimes,
                &outaged,
                started,
            );
            tick_out.links_reprepared = reprepared;
            tick_out.links_rebound = rebound;
            tick_out.cold_panels = cold_panels;
            tick_out.warm_panels = warm_panels;
            tick_out.reused_panels = reused_panels;
            tick_out.outaged_panels = outaged_panels;
            tick_out.fault_reassignments = reassignments;
            tick_out.revival_readmissions = revivals;
            tick_out.reports_lost = reports_lost;
            tick_out.reports_exhausted = reports_exhausted;
            tick_out.psu_glitches = psu_glitches;
            wall_total += tick_out.wall_ms;
            out.push(tick_out);
        }
        SimReport {
            ticks: out,
            handoffs: handoffs_total,
            wall_ms: wall_total,
        }
    }

    /// Rebuilds the listed panels' sub-fleets and evaluators from the
    /// current assignment (membership changed: handoff or first tick).
    /// Returns how many links were re-prepared.
    fn rebuild_panels(
        fleet: &Fleet,
        array: &PanelArray,
        caches: &[(&'static str, PlanCache)],
        assignment: &[usize],
        states: &mut [PanelState],
        panels: &[usize],
        faults: &FaultPlan,
        churn_baseline: bool,
    ) -> usize {
        let subfleets = array.subfleets(fleet, assignment);
        let mut reprepared = 0usize;
        for &k in panels {
            let (subfleet, members) = subfleets[k].clone();
            reprepared += subfleet.len();
            states[k].evaluator = if subfleet.is_empty() {
                None
            } else {
                let cache = PanelArray::cache_for(caches, &array.panels()[k].design);
                let mut evaluator = FleetEvaluator::with_plan_cache(&subfleet, cache);
                evaluator.set_reference_batch(churn_baseline);
                // Dead unit-cell columns are a property of the panel
                // hardware, not the sub-fleet: mask them into every
                // evaluator built for this panel so Algorithm 1
                // re-optimizes around the defect.
                let fault = faults.bias_fault(k);
                if !fault.is_healthy() {
                    evaluator.set_bias_fault(Some(fault));
                }
                Some(evaluator)
            };
            states[k].subfleet = subfleet;
            states[k].members = members;
            states[k].prev = None;
            states[k].moved = false;
            states[k].membership_changed = true;
        }
        reprepared
    }

    /// The best surviving panel for a device orphaned by an outage:
    /// argmax of reference power over the live panels (the same
    /// measurement the handoff margins use). The all-panels-out guard
    /// guarantees at least one survivor.
    fn best_surviving_panel(
        fleet: &Fleet,
        d: usize,
        outaged: &[bool],
        ref_links: &[Vec<PreparedLink>],
        ref_responses: &[Vec<(u64, SurfaceResponse)>],
    ) -> usize {
        let bits = fleet.devices()[d].scenario.frequency.0.to_bits();
        let mut best_k = usize::MAX;
        let mut best = f64::NEG_INFINITY;
        for (k, &out) in outaged.iter().enumerate() {
            if out {
                continue;
            }
            let response = ref_responses[k]
                .iter()
                .find(|(b, _)| *b == bits)
                .map(|(_, r)| r)
                .expect("reference responses prebuilt for every carrier");
            let p = ref_links[d][k].received_dbm_with(Some(response)).0;
            if p > best {
                best = p;
                best_k = k;
            }
        }
        assert!(best_k != usize::MAX, "at least one panel survives");
        best_k
    }

    /// PSU billing, served-power evaluation and tick assembly — shared
    /// by both modes. The tick's wall-clock (`started`) is captured
    /// right after the PSU billing: everything up to there is genuine
    /// controller work (advance, handoff, link prep, searching,
    /// switching), while the served-power evaluation below is simulator
    /// *observation* — in a real deployment those powers are measured
    /// over the air, not computed — so billing it would contaminate the
    /// warm-vs-cold comparison (the modes do very different amounts of
    /// bookkeeping to observe the same world).
    #[allow(clippy::too_many_arguments)]
    fn settle_tick(
        &self,
        fleet: &Fleet,
        array: &PanelArray,
        states: &mut [PanelState],
        t: Seconds,
        moved: Vec<usize>,
        handoffs: usize,
        outcome: PanelOutcome,
        airtimes: &[f64],
        outaged: &[bool],
        started: Instant,
    ) -> TickOutcome {
        let recorder = &self.recorder;
        let traced = recorder.enabled();
        let tick_len = self.config.tick.0;
        let mut applied = Vec::with_capacity(array.len());
        let mut panel_duty = Vec::with_capacity(array.len());
        let mut deferred = 0usize;
        let settle_span = recorder.span("sim.phase.settle_ns");
        for (k, state) in states.iter_mut().enumerate() {
            let proposed = outcome.per_panel[k].outcome.shared_bias;
            let (used, d) = settle_psu(state, t.0, tick_len, airtimes[k], proposed);
            deferred += d;
            if traced && d > 0 {
                recorder.emit(TelemetryEvent::PsuSettle {
                    panel: k,
                    deferred: true,
                });
            }
            applied.push(state.applied);
            // A dark panel serves nobody, whatever its rails are doing.
            panel_duty.push(if outaged[k] {
                0.0
            } else {
                (1.0 - used / tick_len).clamp(0.0, 1.0)
            });
        }
        drop(settle_span);
        if traced {
            recorder.emit(TelemetryEvent::TickPhase {
                phase: "settle",
                items: deferred,
            });
        }
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;

        let serve_span = recorder.span("sim.phase.serve_ns");
        // Served powers at the *applied* biases. When a panel's rails
        // already hold the proposed bias, the scheduling outcome's
        // powers ARE the served powers; a deferred change needs a fresh
        // evaluation at the bias still in force.
        let mut served_min = f64::INFINITY;
        let mut throughput = 0.0f64;
        let mut any = false;
        // Cold mode keeps no evaluators; rebuild the sub-fleets at most
        // once per tick for its divergent panels.
        let mut cold_subfleets: Option<Vec<(Fleet, Vec<usize>)>> = None;
        for (k, allocation) in outcome.per_panel.iter().enumerate() {
            if allocation.devices.is_empty() {
                continue;
            }
            let powers: Vec<f64> = if allocation.outcome.shared_bias == Some(applied[k]) {
                allocation
                    .outcome
                    .per_device
                    .iter()
                    .map(|s| s.power_dbm)
                    .collect()
            } else {
                match &states[k].evaluator {
                    Some(e) => e.powers_dbm(applied[k]),
                    None => {
                        let subfleets = cold_subfleets
                            .get_or_insert_with(|| array.subfleets(fleet, &outcome.assignment));
                        FleetEvaluator::new(&subfleets[k].0).powers_dbm(applied[k])
                    }
                }
            };
            for (&d, &power) in allocation.devices.iter().zip(powers.iter()) {
                any = true;
                served_min = served_min.min(power);
                throughput += duty_cycled_throughput(
                    Dbm(power),
                    &fleet.devices()[d].profile.noise,
                    panel_duty[k],
                );
            }
        }
        if !any {
            served_min = f64::NEG_INFINITY;
        }
        drop(serve_span);
        if traced {
            recorder.emit(TelemetryEvent::TickPhase {
                phase: "serve",
                items: fleet.len(),
            });
        }

        TickOutcome {
            t,
            moved,
            handoffs,
            outcome,
            applied,
            panel_duty,
            deferred_switches: deferred,
            links_reprepared: 0,
            links_rebound: 0,
            cold_panels: 0,
            warm_panels: 0,
            reused_panels: 0,
            outaged_panels: 0,
            fault_reassignments: 0,
            revival_readmissions: 0,
            reports_lost: 0,
            reports_exhausted: 0,
            psu_glitches: 0,
            served_min_power_dbm: served_min,
            served_throughput_bits_hz: throughput,
            wall_ms,
        }
    }
}
