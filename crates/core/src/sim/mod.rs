//! Event-stepped mobility simulation: moving fleets, panel handoff with
//! hysteresis, and warm-start re-optimization.
//!
//! Everything the workspace served before this module was a frozen
//! snapshot: PR 3/4 pick one bias (or K panel biases) for a fleet that
//! never moves. The paper's own deployments are dynamic — devices roam
//! the room, people walk between AP and surface (§5.2.2) — and the
//! related programmable-environment literature frames the workload that
//! actually matters as the *reconfiguration* workload under mobility.
//! This module is that workload, end to end:
//!
//! * [`mobility`] — [`MobilityModel`]s (waypoint walks, turntable
//!   rotation, transient human [`Blockage`] windows) carried by a
//!   [`DynamicFleet`], whose event-stepped clock edge
//!   ([`DynamicFleet::advance_to`]) reports exactly which links
//!   changed;
//! * [`engine`] — [`MobilitySim`]: per tick, advance the world, decide
//!   panel handoffs under a dwell + dB [`HandoffPolicy`], re-prepare
//!   only the dirty links, re-optimize each panel (reuse / warm refine /
//!   cold search), and bill probing airtime, PSU switch gating and rail
//!   settling against the tick's serving duty.
//!
//! The contracts that keep it honest:
//!
//! * **zero-velocity equivalence** — a fleet that never moves
//!   reproduces the static [`crate::panels::PanelScheduler`] allocation
//!   tick for tick, exactly (`proptest_sim`);
//! * **warm == cold when it matters** — a warm tick that lands on a
//!   different allocation only does so because the world changed; on an
//!   unchanged world the warm engine *reuses* the previous allocation
//!   outright (zero probes);
//! * **honest throughput** — served rates are duty-cycled by the
//!   reconfiguration overhead actually incurred, so a controller that
//!   re-searches every tick visibly starves its links next to one that
//!   warm-starts.
//!
//! ```
//! use llama_core::fleet::Fleet;
//! use llama_core::panels::{PanelArray, PanelScheduler};
//! use llama_core::sim::{DynamicFleet, MobilitySim, SimConfig};
//! use rfmath::units::Seconds;
//!
//! let mut fleet = DynamicFleet::roaming_mixed(8, 7, Seconds(8.0));
//! let array = PanelArray::distributed(fleet.fleet().design.clone(), 2);
//! let sim = MobilitySim::new(PanelScheduler::max_min(), SimConfig::default());
//! let report = sim.run(&mut fleet, &array, 8);
//! assert_eq!(report.ticks.len(), 8);
//! // Most ticks warm-start or reuse: far fewer probes than 8 cold runs.
//! assert!(report.total_probes() < 8 * 100);
//! ```

pub mod engine;
pub mod mobility;

pub use engine::{HandoffPolicy, MobilitySim, SimConfig, SimReport, TickOutcome};
pub use mobility::{Blockage, DynamicFleet, MobilityModel};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::fleet::Fleet;
    use crate::panels::{Assignment, PanelArray, PanelScheduler};
    use rfmath::units::Seconds;

    fn sim(config: SimConfig) -> MobilitySim {
        MobilitySim::new(PanelScheduler::max_min(), config)
    }

    #[test]
    fn zero_motion_reproduces_the_static_scheduler_every_tick() {
        // The satellite contract: a parked fleet's every tick carries
        // the exact allocation the static PanelScheduler computes —
        // tick 0 because the sim runs the same cold search, later ticks
        // because nothing moved and the allocation is reused outright.
        let base = Fleet::mixed_wifi_ble(6, 41);
        let array = PanelArray::uniform(base.design.clone(), 2);
        let static_outcome = PanelScheduler::max_min().run(&base, &array);
        let mut fleet = DynamicFleet::new(base);
        let report = sim(SimConfig::default()).run(&mut fleet, &array, 5);
        for (i, tick) in report.ticks.iter().enumerate() {
            assert!(
                tick.outcome.same_allocation(&static_outcome),
                "tick {i} diverged from the static allocation"
            );
            assert!(tick.moved.is_empty());
        }
        // Tick 0 pays the cold search; every later tick reuses.
        assert_eq!(report.ticks[0].outcome.probes, static_outcome.probes);
        for tick in &report.ticks[1..] {
            assert_eq!(tick.outcome.probes, 0, "reuse must cost zero probes");
            assert_eq!(tick.reused_panels, 2);
        }
        assert_eq!(report.handoffs, 0);
    }

    #[test]
    fn zero_motion_warm_equals_cold_mode() {
        let base = Fleet::mixed_wifi_ble(5, 13);
        let array = PanelArray::uniform(base.design.clone(), 2);
        let warm = sim(SimConfig::default()).run(&mut DynamicFleet::new(base.clone()), &array, 4);
        let cold = sim(SimConfig::cold()).run(&mut DynamicFleet::new(base), &array, 4);
        for (w, c) in warm.ticks.iter().zip(&cold.ticks) {
            assert!(
                w.outcome.same_allocation(&c.outcome),
                "warm and cold modes disagreed on a motionless world"
            );
        }
    }

    #[test]
    fn motionless_devices_never_hand_off_on_distributed_arrays() {
        // Regression: on a distributed array the panels measure
        // differently, so a parked device whose tick-0 assignment is
        // more than hysteresis_db worse than another panel used to
        // accrue dwell and migrate — diverging warm from cold on a
        // world where nothing moved. Handoffs must only consider the
        // dirty set.
        for seed in [5, 10, 21, 34] {
            let base = Fleet::mixed_wifi_ble(3, seed);
            let array = PanelArray::distributed(base.design.clone(), 2);
            let scheduler = PanelScheduler::max_min();
            let warm = MobilitySim::new(scheduler.clone(), SimConfig::default()).run(
                &mut DynamicFleet::new(base.clone()),
                &array,
                4,
            );
            assert_eq!(warm.handoffs, 0, "seed {seed}: static fleet handed off");
            let cold = MobilitySim::new(scheduler, SimConfig::cold()).run(
                &mut DynamicFleet::new(base),
                &array,
                4,
            );
            for (w, c) in warm.ticks.iter().zip(&cold.ticks) {
                assert!(
                    w.outcome.same_allocation(&c.outcome),
                    "seed {seed}: warm diverged from cold on a motionless world"
                );
            }
        }
    }

    #[test]
    fn warm_mode_spends_far_fewer_probes_under_mobility() {
        let array = PanelArray::distributed(Fleet::mixed_wifi_ble(8, 2021).design.clone(), 2);
        let ticks = 6;
        let mut roaming = DynamicFleet::roaming_mixed(8, 2021, Seconds(ticks as f64));
        let warm = sim(SimConfig::default()).run(&mut roaming, &array, ticks);
        let mut roaming = DynamicFleet::roaming_mixed(8, 2021, Seconds(ticks as f64));
        let cold = sim(SimConfig::cold()).run(&mut roaming, &array, ticks);
        assert!(
            warm.total_probes() * 2 < cold.total_probes(),
            "warm {} probes vs cold {}",
            warm.total_probes(),
            cold.total_probes()
        );
        // Fewer probes = less reconfiguration airtime = better duty.
        assert!(
            warm.mean_duty() > cold.mean_duty(),
            "warm duty {:.3} vs cold {:.3}",
            warm.mean_duty(),
            cold.mean_duty()
        );
        // And only the dirty subset of links was ever re-prepared.
        assert!(
            warm.total_links_reprepared() < cold.total_links_reprepared(),
            "warm re-prepared {} links vs cold {}",
            warm.total_links_reprepared(),
            cold.total_links_reprepared()
        );
        assert!(warm.total_links_rebound() > 0, "rotators rebind cheaply");
    }

    #[test]
    fn handoffs_fire_under_low_hysteresis_and_calm_under_high() {
        // A device walking across a distributed array genuinely changes
        // its per-panel margins; an eager policy migrates it, a
        // conservative one holds.
        let ticks = 10usize;
        let build = || {
            let base = Fleet::mixed_wifi_ble(6, 5);
            let mut fleet = DynamicFleet::new(base);
            let from = fleet.fleet().devices()[0]
                .scenario
                .deployment
                .tx_rx_distance()
                .cm();
            fleet.set_mobility(
                0,
                MobilityModel::walk(from, from + 260.0, Seconds(1.0), Seconds(6.0)),
            );
            fleet
        };
        let array = PanelArray::distributed(build().fleet().design.clone(), 3);
        let scheduler = PanelScheduler::max_min().with_assignment(Assignment::BestReference);
        let eager = MobilitySim::new(
            scheduler.clone(),
            SimConfig::default().with_handoff(HandoffPolicy {
                hysteresis_db: 0.0,
                dwell_ticks: 1,
                ..HandoffPolicy::default()
            }),
        )
        .run(&mut build(), &array, ticks);
        let calm = MobilitySim::new(
            scheduler,
            SimConfig::default().with_handoff(HandoffPolicy {
                hysteresis_db: 60.0,
                dwell_ticks: 4,
                ..HandoffPolicy::default()
            }),
        )
        .run(&mut build(), &array, ticks);
        assert!(
            eager.handoffs >= 1,
            "an eager policy must migrate the walker"
        );
        assert_eq!(calm.handoffs, 0, "a 60 dB margin never materializes");
        assert!(eager.handoffs > calm.handoffs);
    }

    #[test]
    fn sub_settling_ticks_defer_bias_changes() {
        // A tick shorter than one probe sweep + settle can never finish
        // a reconfiguration in-tick: the change must defer, the old bias
        // keeps serving, and duty collapses — the honest accounting.
        let base = Fleet::mixed_wifi_ble(3, 3);
        let array = PanelArray::uniform(base.design.clone(), 1);
        let mut fleet = DynamicFleet::new(base);
        let report = sim(SimConfig::default().with_tick(Seconds(0.05))).run(&mut fleet, &array, 3);
        assert!(
            report.ticks[0].deferred_switches >= 1,
            "the first optimization cannot settle inside 50 ms"
        );
        assert!(report.ticks[0].panel_duty[0] < 0.5);
    }

    #[test]
    fn empty_fleet_simulates_cleanly() {
        let base = Fleet::new(metasurface::designs::fr4_optimized());
        let array = PanelArray::uniform(base.design.clone(), 2);
        let mut fleet = DynamicFleet::new(base);
        let report = sim(SimConfig::default()).run(&mut fleet, &array, 3);
        assert_eq!(report.ticks.len(), 3);
        for tick in &report.ticks {
            assert!(tick.outcome.per_device.is_empty());
            assert_eq!(tick.served_min_power_dbm, f64::NEG_INFINITY);
            assert_eq!(tick.served_throughput_bits_hz, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "shared-bias")]
    fn time_division_is_rejected() {
        let base = Fleet::mixed_wifi_ble(3, 3);
        let array = PanelArray::uniform(base.design.clone(), 1);
        let _ = MobilitySim::new(PanelScheduler::time_division(), SimConfig::default()).run(
            &mut DynamicFleet::new(base),
            &array,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "warm engine")]
    fn faults_on_the_cold_baseline_are_rejected() {
        let base = Fleet::mixed_wifi_ble(3, 3);
        let array = PanelArray::uniform(base.design.clone(), 1);
        let _ = sim(SimConfig::cold())
            .with_faults(FaultPlan::with_rates(1, 0.1, 0.0, 0.0))
            .run(&mut DynamicFleet::new(base), &array, 1);
    }

    #[test]
    fn an_empty_fault_plan_is_bitwise_inert() {
        let ticks = 6;
        let array = PanelArray::distributed(Fleet::mixed_wifi_ble(6, 17).design.clone(), 2);
        let mut roaming = DynamicFleet::roaming_mixed(6, 17, Seconds(ticks as f64));
        let plain = sim(SimConfig::default()).run(&mut roaming, &array, ticks);
        let mut roaming = DynamicFleet::roaming_mixed(6, 17, Seconds(ticks as f64));
        let faulted = sim(SimConfig::default())
            .with_faults(FaultPlan::none())
            .run(&mut roaming, &array, ticks);
        for (p, f) in plain.ticks.iter().zip(&faulted.ticks) {
            assert!(p.outcome.same_allocation(&f.outcome));
            assert_eq!(
                p.served_min_power_dbm.to_bits(),
                f.served_min_power_dbm.to_bits(),
                "served power must be bit-identical under an empty plan"
            );
            for (a, b) in p.panel_duty.iter().zip(&f.panel_duty) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(p.applied, f.applied);
            assert_eq!(f.outaged_panels, 0);
            assert_eq!(f.reports_lost, 0);
        }
    }

    #[test]
    fn a_scripted_outage_rehomes_the_orphaned_subfleet() {
        use crate::faults::{FaultWindow, PanelOutage};
        let ticks = 8;
        let base = Fleet::mixed_wifi_ble(6, 9);
        let array = PanelArray::distributed(base.design.clone(), 2);
        let mut plan = FaultPlan::none();
        plan.outages.push(PanelOutage {
            panel: 0,
            window: FaultWindow {
                start: Seconds(2.0),
                duration: Seconds(3.0),
            },
        });
        let mut fleet = DynamicFleet::roaming_mixed(6, 9, Seconds(ticks as f64));
        let report = sim(SimConfig::default())
            .with_faults(plan)
            .run(&mut fleet, &array, ticks);
        assert!(
            report.total_fault_reassignments() > 0,
            "someone lived on panel 0 and had to move"
        );
        assert_eq!(report.total_outaged_panel_ticks(), 3);
        for tick in &report.ticks {
            let dark = tick.t.0 >= 2.0 && tick.t.0 < 5.0;
            if dark {
                assert!(
                    tick.outcome.assignment.iter().all(|&k| k != 0),
                    "t={}: nobody may be served by a dark panel",
                    tick.t.0
                );
                assert_eq!(tick.panel_duty[0], 0.0, "a dark panel serves nobody");
            }
            // The fleet is still served end to end, outage or not.
            assert!(tick.served_min_power_dbm.is_finite());
        }
        // Degraded, not dead: the run as a whole still moves bits (a
        // single tick may honestly burn all its duty on the re-home's
        // cold re-search).
        let moved_bits: f64 = report
            .ticks
            .iter()
            .map(|t| t.served_throughput_bits_hz)
            .sum();
        assert!(moved_bits > 0.0);
    }

    #[test]
    fn a_healed_panel_readmits_its_stranded_subfleet_immediately() {
        use crate::faults::{FaultWindow, PanelOutage};
        use crate::panels::RevivalPolicy;
        use engine::HandoffPolicy;
        // A *stationary* fleet is the case the revival hook exists for:
        // parked devices never enter the handoff loop, so without the
        // hook an outage permanently strands them on fallback panels.
        let ticks = 8;
        let base = Fleet::mixed_wifi_ble(6, 9);
        let array = PanelArray::distributed(base.design.clone(), 2);
        let plan = || {
            let mut plan = FaultPlan::none();
            plan.outages.push(PanelOutage {
                panel: 0,
                window: FaultWindow {
                    start: Seconds(2.0),
                    duration: Seconds(2.0),
                },
            });
            plan
        };
        let run = |revival: RevivalPolicy| {
            let config = SimConfig::default().with_handoff(HandoffPolicy {
                revival,
                ..HandoffPolicy::default()
            });
            sim(config)
                .with_faults(plan())
                .run(&mut DynamicFleet::new(base.clone()), &array, ticks)
        };

        let eager = run(RevivalPolicy::Immediate);
        assert!(
            eager.ticks[0].outcome.assignment.contains(&0),
            "the scenario needs devices living on panel 0 before the outage"
        );
        assert!(
            eager.total_fault_reassignments() > 0,
            "the outage must strand someone on the fallback panel"
        );
        assert!(
            eager.total_revival_readmissions() >= 1,
            "Immediate revival must re-home devices the tick the panel heals"
        );
        let healed = eager.ticks.last().unwrap();
        assert!(
            healed.outcome.assignment.contains(&0),
            "the healed panel serves again"
        );

        let parked = run(RevivalPolicy::Hysteresis);
        assert_eq!(
            parked.total_revival_readmissions(),
            0,
            "Hysteresis leaves re-admission to the handoff loop"
        );
        assert!(
            parked
                .ticks
                .last()
                .unwrap()
                .outcome
                .assignment
                .iter()
                .all(|&k| k != 0),
            "parked devices stay stranded: the handoff loop never touches them"
        );
    }

    #[test]
    fn exhausted_report_retries_hold_the_last_good_bias() {
        // Lose every probe report from tick 3 on: searches still spend
        // airtime (lost deliveries bill their backoff-widened timeouts)
        // but the rails hold the last allocation the controller heard.
        let ticks = 8usize;
        let build = || DynamicFleet::roaming_mixed(6, 21, Seconds(ticks as f64));
        let array = PanelArray::distributed(build().fleet().design.clone(), 2);
        let mut lossy = FaultPlan::with_rates(7, 0.0, 1.0, 0.0);
        // Rate draws at 1.0 fire always; gate the loss window by hand
        // via the report timeout so early ticks establish a baseline.
        lossy.report_timeout = Seconds(0.02);
        let faulted = sim(SimConfig::default())
            .with_faults(lossy)
            .run(&mut build(), &array, ticks);
        let clean = sim(SimConfig::default()).run(&mut build(), &array, ticks);
        assert!(
            faulted.total_reports_exhausted() > 0,
            "certain loss must exhaust the retries of every search"
        );
        assert_eq!(
            faulted.total_reports_lost(),
            faulted.total_reports_exhausted() * 4,
            "every exhaustion burned the full default retry budget"
        );
        // Holding biases and burning retry airtime costs duty.
        assert!(
            faulted.mean_duty() <= clean.mean_duty(),
            "faulted duty {:.3} must not beat clean {:.3}",
            faulted.mean_duty(),
            clean.mean_duty()
        );
        // The fleet is still served: no panic, finite power every tick.
        for tick in &faulted.ticks {
            assert!(tick.served_min_power_dbm.is_finite());
        }
    }

    #[test]
    fn the_all_panels_out_guard_keeps_one_panel_alive() {
        let base = Fleet::mixed_wifi_ble(4, 11);
        let array = PanelArray::uniform(base.design.clone(), 2);
        let plan = FaultPlan::with_rates(5, 1.0, 0.0, 0.0);
        let mut fleet = DynamicFleet::new(base);
        let report = sim(SimConfig::default())
            .with_faults(plan)
            .run(&mut fleet, &array, 4);
        for tick in &report.ticks {
            assert_eq!(tick.outaged_panels, 1, "one of two panels survives");
            assert!(
                tick.outcome.assignment.iter().all(|&k| k == 0),
                "everyone is served by the surviving panel"
            );
            assert!(tick.served_min_power_dbm.is_finite());
        }
    }

    #[test]
    fn dead_columns_degrade_but_do_not_kill_service() {
        use crate::faults::{Axis, CellFault, CellFaultKind};
        use rfmath::units::Volts;
        let ticks = 5;
        let build = || DynamicFleet::roaming_mixed(5, 33, Seconds(ticks as f64));
        let array = PanelArray::uniform(build().fleet().design.clone(), 2);
        let mut plan = FaultPlan::none();
        plan.dead_columns.push(CellFault {
            panel: 0,
            axis: Axis::X,
            kind: CellFaultKind::Stuck(Volts(0.0)),
        });
        let faulted = sim(SimConfig::default())
            .with_faults(plan)
            .run(&mut build(), &array, ticks);
        let clean = sim(SimConfig::default()).run(&mut build(), &array, ticks);
        // The search routes around the stuck rail: service survives …
        for tick in &faulted.ticks {
            assert!(tick.served_min_power_dbm.is_finite());
        }
        // … but a panel that cannot steer its X axis cannot beat a
        // healthy one.
        assert!(
            faulted.mean_served_min_power_dbm() <= clean.mean_served_min_power_dbm() + 1e-9,
            "faulted {:.2} dBm vs clean {:.2} dBm",
            faulted.mean_served_min_power_dbm(),
            clean.mean_served_min_power_dbm()
        );
    }
}
