//! Mobility models and the dynamic fleet they drive.
//!
//! A [`DynamicFleet`] is a [`Fleet`] whose devices carry
//! [`MobilityModel`]s — waypoint walks through the room, continuous
//! mount rotation on a [`devices::turntable::Turntable`] — plus
//! transient [`Blockage`] windows (a person stepping into a link, §5.2.2)
//! that attenuate one device for a while. [`DynamicFleet::advance_to`]
//! is the event-stepped clock edge: it moves every model to the new
//! simulation time, mutates the fleet snapshot in place, and returns the
//! indices of the devices whose link actually changed — the *dirty set*
//! the simulation engine uses to re-prepare only the links that moved.

use devices::human::HumanTarget;
use devices::turntable::Turntable;
use propagation::antenna::OrientedAntenna;
use propagation::rays::Deployment;
use rfmath::units::{Degrees, Meters, Seconds, Watts};
use rfmath::vec2::Point2;

use crate::fleet::Fleet;

/// How one device moves through the room over simulation time.
#[derive(Clone, Debug)]
pub enum MobilityModel {
    /// Parked: the device never dirties its link.
    Static,
    /// A piecewise-linear walk through `(time, room position)`
    /// waypoints, clamped at both ends (the device stands still before
    /// the first waypoint and after the last). Walking moves the
    /// device's receiver through the room, so each step costs a full
    /// link re-preparation (the scatter realization tracks the
    /// geometry). Attach via [`MobilityModel::waypoints`] or
    /// [`DynamicFleet::set_mobility`], which sort the waypoints by time
    /// and reject duplicates.
    Waypoints(Vec<(Seconds, Point2)>),
    /// Continuous mount rotation: the turntable is re-commanded to
    /// `start + rate·t` at every clock edge and slews at its own
    /// mechanical limit (with its step quantization). Rotation leaves
    /// the endpoint separation alone, so each step is a cheap link
    /// rebind — the cached scatter is reused.
    Rotating {
        /// The fixture carrying the device's antenna.
        turntable: Turntable,
        /// Mount orientation at `t = 0`.
        start: Degrees,
        /// Commanded rotation rate, degrees per second.
        rate_deg_per_s: f64,
    },
}

impl MobilityModel {
    /// A planar waypoint walk, normalized: waypoints are stably sorted
    /// by time so callers may list them in any order.
    ///
    /// # Panics
    /// Panics on an empty list, duplicate timestamps (two positions at
    /// one instant is not a trajectory), or non-finite coordinates.
    pub fn waypoints(points: Vec<(Seconds, Point2)>) -> Self {
        let mut model = Self::Waypoints(points);
        model.normalize();
        model
    }

    /// A walk along the x-axis from `from_cm` to `to_cm` (AP-distance
    /// in centimeters) between `depart` and `arrive`, standing still
    /// outside that window — the legacy 1-D convenience, now a thin
    /// wrapper over planar waypoints.
    pub fn walk(from_cm: f64, to_cm: f64, depart: Seconds, arrive: Seconds) -> Self {
        Self::waypoints(vec![
            (depart, Point2::new(Meters::from_cm(from_cm).0, 0.0)),
            (arrive, Point2::new(Meters::from_cm(to_cm).0, 0.0)),
        ])
    }

    /// A rotation trace starting from the device's current mount.
    pub fn rotate(start: Degrees, rate_deg_per_s: f64) -> Self {
        Self::Rotating {
            turntable: Turntable::at(start),
            start,
            rate_deg_per_s,
        }
    }

    /// Sorts waypoints by time and validates the model's invariants —
    /// applied when the model is attached to a device, so directly
    /// constructed `Waypoints` variants get the same guarantees.
    ///
    /// # Panics
    /// Panics on an empty waypoint list, duplicate timestamps, or
    /// non-finite times/coordinates.
    fn normalize(&mut self) {
        if let Self::Waypoints(points) = self {
            assert!(!points.is_empty(), "a waypoint walk needs waypoints");
            assert!(
                points
                    .iter()
                    .all(|(t, p)| t.0.is_finite() && p.x.is_finite() && p.y.is_finite()),
                "waypoint times and coordinates must be finite"
            );
            points.sort_by(|a, b| a.0 .0.total_cmp(&b.0 .0));
            assert!(
                points.windows(2).all(|w| w[1].0 .0 > w[0].0 .0),
                "duplicate waypoint timestamps"
            );
        }
    }
}

/// Clamped piecewise-linear interpolation over time-sorted planar
/// waypoints.
fn interpolate(points: &[(Seconds, Point2)], t: Seconds) -> Point2 {
    let first = points.first().expect("waypoints validated non-empty");
    if t.0 <= first.0 .0 {
        return first.1;
    }
    for pair in points.windows(2) {
        let (t0, p0) = pair[0];
        let (t1, p1) = pair[1];
        if t.0 <= t1.0 {
            let frac = ((t.0 - t0.0) / (t1.0 - t0.0)).clamp(0.0, 1.0);
            return p0.lerp(p1, frac);
        }
    }
    points.last().expect("non-empty").1
}

/// A transient blocker in the room (a person stepping into a link — the
/// §5.2.2 "someone walks between AP and surface" event). Blockage
/// scales the whole affected link uniformly, so it is a cheap rebind
/// for the evaluation engine and — because it shifts every panel's
/// reference power equally — never triggers a panel handoff by itself.
#[derive(Clone, Debug, PartialEq)]
pub enum Blockage {
    /// The legacy scripted form: one device's link is attenuated for a
    /// fixed time window.
    Window {
        /// Fleet-order index of the blocked device.
        device: usize,
        /// When the blocker enters the link.
        start: Seconds,
        /// How long they stay.
        duration: Seconds,
        /// Obstruction loss while blocked, dB.
        loss_db: f64,
    },
    /// A body moving through the room: it occludes *whichever* links
    /// its line of sight actually crosses, whenever its center passes
    /// within `radius` of a link's Tx–Rx segment. The walk is clamped
    /// like device waypoints (the body stands at its first position
    /// before departing and parks at its last), so place the endpoints
    /// clear of the links.
    Crossing {
        /// The body's walk through the room, `(time, position)`.
        path: Vec<(Seconds, Point2)>,
        /// Effective body radius for the line-of-sight test, meters.
        radius: Meters,
        /// Obstruction loss while occluding, dB.
        loss_db: f64,
    },
}

/// Effective radius of a standing human body for line-of-sight
/// occlusion, meters (roughly a shoulder half-span).
pub const HUMAN_BODY_RADIUS: Meters = Meters(0.35);

impl Blockage {
    /// A scripted window blockage by a human body, with the obstruction
    /// loss derived from the subject model
    /// ([`HumanTarget::blockage_loss_db`]).
    pub fn from_human(
        device: usize,
        start: Seconds,
        duration: Seconds,
        human: &HumanTarget,
    ) -> Self {
        Self::Window {
            device,
            start,
            duration,
            loss_db: human.blockage_loss_db().0,
        }
    }

    /// A human walking through the room along `path`, occluding
    /// whatever links they cross ([`HUMAN_BODY_RADIUS`] body).
    ///
    /// # Panics
    /// Panics on an empty path, duplicate timestamps, or non-finite
    /// coordinates (same contract as device waypoints).
    pub fn human_crossing(path: Vec<(Seconds, Point2)>, human: &HumanTarget) -> Self {
        let mut model = MobilityModel::Waypoints(path);
        model.normalize();
        let MobilityModel::Waypoints(path) = model else {
            unreachable!("normalize preserves the variant")
        };
        Self::Crossing {
            path,
            radius: HUMAN_BODY_RADIUS,
            loss_db: human.blockage_loss_db().0,
        }
    }

    /// The loss this blocker imposes on the link of a device deployed
    /// at `deployment`, at time `t` (zero when clear).
    pub fn loss_at(&self, device: usize, deployment: &Deployment, t: Seconds) -> f64 {
        match self {
            Self::Window {
                device: blocked,
                start,
                duration,
                loss_db,
            } => {
                if device == *blocked && t.0 >= start.0 && t.0 < start.0 + duration.0 {
                    *loss_db
                } else {
                    0.0
                }
            }
            Self::Crossing {
                path,
                radius,
                loss_db,
            } => {
                let body = interpolate(path, t);
                if body.segment_distance(deployment.tx, deployment.rx) < radius.0 {
                    *loss_db
                } else {
                    0.0
                }
            }
        }
    }
}

/// A fleet whose devices move: the event-stepped simulation's world
/// state. The snapshot is always the fleet *as of the last clock edge*;
/// [`DynamicFleet::advance_to`] mutates it in place and reports which
/// links changed.
#[derive(Clone, Debug)]
pub struct DynamicFleet {
    snapshot: Fleet,
    mobility: Vec<MobilityModel>,
    blockages: Vec<Blockage>,
    base_tx_power: Vec<Watts>,
    now: Seconds,
}

impl DynamicFleet {
    /// Wraps a static fleet: every device parked, no blockage events.
    /// Until mobility is attached, every tick's dirty set is empty —
    /// which is exactly the zero-velocity equivalence contract (the
    /// simulator then reproduces the static scheduler tick for tick).
    pub fn new(fleet: Fleet) -> Self {
        let base_tx_power = fleet
            .devices()
            .iter()
            .map(|d| d.scenario.tx_power)
            .collect();
        let mobility = vec![MobilityModel::Static; fleet.len()];
        Self {
            snapshot: fleet,
            mobility,
            blockages: Vec::new(),
            base_tx_power,
            now: Seconds(0.0),
        }
    }

    /// Attaches a mobility model to device `idx`.
    ///
    /// # Panics
    /// Panics when `idx` is out of range or the model's waypoints are
    /// malformed (unsorted times, non-positive distances).
    pub fn set_mobility(&mut self, idx: usize, mut model: MobilityModel) {
        assert!(idx < self.snapshot.len(), "device index out of range");
        model.normalize();
        self.mobility[idx] = model;
    }

    /// Schedules a blockage event (a scripted window or a body crossing
    /// the room).
    ///
    /// # Panics
    /// Panics when a window event references a device outside the fleet.
    pub fn add_blockage(&mut self, blockage: Blockage) {
        if let Blockage::Window { device, .. } = blockage {
            assert!(
                device < self.snapshot.len(),
                "blockage references a device outside the fleet"
            );
        }
        self.blockages.push(blockage);
    }

    /// The current fleet snapshot (as of the last clock edge).
    pub fn fleet(&self) -> &Fleet {
        &self.snapshot
    }

    /// The last clock edge the fleet was advanced to.
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.snapshot.len()
    }

    /// True when the fleet has no devices.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_empty()
    }

    /// Advances every mobility model and blockage window to simulation
    /// time `t`, mutating the snapshot in place. Returns the indices of
    /// the devices whose link actually changed — the dirty set that
    /// bounds how much re-preparation the engine pays this tick. A
    /// zero-velocity fleet returns an empty set at every edge.
    pub fn advance_to(&mut self, t: Seconds) -> Vec<usize> {
        self.now = t;
        let mut dirty = Vec::new();
        for d in 0..self.snapshot.len() {
            let mut changed = false;
            match &mut self.mobility[d] {
                MobilityModel::Static => {}
                MobilityModel::Waypoints(points) => {
                    let p = interpolate(points, t);
                    let dev = self.snapshot.device_mut(d);
                    let old = dev.scenario.deployment.rx;
                    if p.x.to_bits() != old.x.to_bits() || p.y.to_bits() != old.y.to_bits() {
                        dev.scenario.deployment = dev.scenario.deployment.with_rx_at(p);
                        changed = true;
                    }
                }
                MobilityModel::Rotating {
                    turntable,
                    start,
                    rate_deg_per_s,
                } => {
                    turntable.command(Degrees(start.0 + *rate_deg_per_s * t.0));
                    turntable.update(t);
                    let pos = turntable.position();
                    let dev = self.snapshot.device_mut(d);
                    if dev.scenario.rx.orientation.0.to_bits() != pos.0.to_bits() {
                        dev.scenario.rx =
                            OrientedAntenna::new(dev.scenario.rx.antenna.clone(), pos);
                        changed = true;
                    }
                }
            }
            // Blockages attenuate the link end to end; model it as a
            // transmit-power scale (a blocker near an endpoint shades
            // every path the same way). Crossing bodies occlude by
            // line-of-sight: whichever links their center passes within
            // a body radius of, at this instant.
            let deployment = self.snapshot.devices()[d].scenario.deployment;
            let loss_db: f64 = self
                .blockages
                .iter()
                .map(|b| b.loss_at(d, &deployment, t))
                .sum();
            let power = Watts(self.base_tx_power[d].0 * 10f64.powf(-loss_db / 10.0));
            let dev = self.snapshot.device_mut(d);
            if dev.scenario.tx_power.0.to_bits() != power.0.to_bits() {
                dev.scenario.tx_power = power;
                changed = true;
            }
            if changed {
                dirty.push(d);
            }
        }
        dirty
    }

    /// The reference mobility workload of the PR-5 bench and CI smoke:
    /// the [`Fleet::mixed_wifi_ble`] population of `n` devices in which
    /// every 8th device (offset 0) walks 1.5 m away from its AP and
    /// back over `duration`, every 8th (offset 4) rotates continuously
    /// at 6°/s on a turntable, and two transient human blockage events
    /// cross links mid-run. At `n = 32` that is 8 moving devices per
    /// tick — 4 full link re-preparations (walkers) and 4 cheap rebinds
    /// (rotators) against 24 untouched links.
    pub fn roaming_mixed(n: usize, seed: u64, duration: Seconds) -> Self {
        let mut dynamic = Self::new(Fleet::mixed_wifi_ble(n, seed));
        for d in 0..n {
            match d % 8 {
                0 => {
                    let from = dynamic.snapshot.devices()[d].scenario.deployment.rx;
                    let out = from + Point2::new(1.5, 0.0);
                    dynamic.set_mobility(
                        d,
                        MobilityModel::Waypoints(vec![
                            (Seconds(0.0), from),
                            (Seconds(duration.0 * 0.5), out),
                            (duration, from),
                        ]),
                    );
                }
                4 => {
                    let start = dynamic.snapshot.devices()[d].scenario.rx.orientation;
                    dynamic.set_mobility(d, MobilityModel::rotate(start, 6.0));
                }
                _ => {}
            }
        }
        if n >= 2 {
            let human = HumanTarget::resting_adult(Meters(2.0));
            dynamic.add_blockage(Blockage::from_human(
                1,
                Seconds(duration.0 * 0.25),
                Seconds(duration.0 * 0.20),
                &human,
            ));
            dynamic.add_blockage(Blockage::from_human(
                n - 1,
                Seconds(duration.0 * 0.60),
                Seconds(duration.0 * 0.15),
                &human,
            ));
        }
        dynamic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfmath::units::Degrees;

    fn small() -> DynamicFleet {
        DynamicFleet::new(Fleet::mixed_wifi_ble(4, 9))
    }

    #[test]
    fn static_fleet_is_never_dirty() {
        let mut fleet = small();
        for i in 0..10 {
            let dirty = fleet.advance_to(Seconds(i as f64));
            assert!(dirty.is_empty(), "tick {i} dirtied {dirty:?}");
        }
        assert_eq!(fleet.now(), Seconds(9.0));
    }

    #[test]
    fn waypoint_walk_moves_and_parks() {
        let mut fleet = small();
        let from = fleet.fleet().devices()[0]
            .scenario
            .deployment
            .tx_rx_distance()
            .cm();
        fleet.set_mobility(
            0,
            MobilityModel::walk(from, from + 100.0, Seconds(2.0), Seconds(4.0)),
        );
        // Before departure: parked.
        assert!(fleet.advance_to(Seconds(1.0)).is_empty());
        // Mid-walk: dirty, halfway there.
        assert_eq!(fleet.advance_to(Seconds(3.0)), vec![0]);
        let mid = fleet.fleet().devices()[0]
            .scenario
            .deployment
            .tx_rx_distance()
            .cm();
        assert!((mid - (from + 50.0)).abs() < 1e-9);
        // Arrived: one last dirty step, then parked again.
        assert_eq!(fleet.advance_to(Seconds(4.0)), vec![0]);
        assert!(fleet.advance_to(Seconds(5.0)).is_empty());
    }

    #[test]
    fn rotation_steps_the_mount_through_the_turntable() {
        let mut fleet = small();
        let start = fleet.fleet().devices()[1].scenario.rx.orientation;
        fleet.set_mobility(1, MobilityModel::rotate(start, 6.0));
        assert!(
            fleet.advance_to(Seconds(0.0)).is_empty(),
            "t = 0 must not move the mount"
        );
        assert_eq!(fleet.advance_to(Seconds(1.0)), vec![1]);
        let turned = fleet.fleet().devices()[1].scenario.rx.orientation;
        assert!((turned.0 - (start.0 + 6.0)).abs() < 0.51, "quantized slew");
    }

    #[test]
    fn blockage_window_dims_and_restores_the_link() {
        let mut fleet = small();
        let base = fleet.fleet().devices()[2].scenario.tx_power;
        fleet.add_blockage(Blockage::Window {
            device: 2,
            start: Seconds(2.0),
            duration: Seconds(2.0),
            loss_db: 12.0,
        });
        assert!(fleet.advance_to(Seconds(1.0)).is_empty());
        // Blocker enters: dirty once, power down 12 dB.
        assert_eq!(fleet.advance_to(Seconds(2.0)), vec![2]);
        let blocked = fleet.fleet().devices()[2].scenario.tx_power;
        assert!((10.0 * (base.0 / blocked.0).log10() - 12.0).abs() < 1e-9);
        // Still inside the window: nothing new changed.
        assert!(fleet.advance_to(Seconds(3.0)).is_empty());
        // Blocker leaves: dirty once, power restored exactly.
        assert_eq!(fleet.advance_to(Seconds(4.0)), vec![2]);
        assert_eq!(fleet.fleet().devices()[2].scenario.tx_power, base);
    }

    #[test]
    fn roaming_mixed_dirties_a_bounded_subset() {
        let mut fleet = DynamicFleet::roaming_mixed(16, 2021, Seconds(16.0));
        let dirty = fleet.advance_to(Seconds(1.0));
        assert!(!dirty.is_empty(), "the roaming workload must move devices");
        assert!(
            dirty.len() <= 6,
            "only walkers, rotators and blockage edges move: {dirty:?}"
        );
    }

    #[test]
    fn unsorted_waypoints_are_sorted_on_attach() {
        // Sort-or-reject: out-of-order times are sorted (stable by
        // time), so the trajectory matches the sorted-input one.
        let mut shuffled = small();
        shuffled.set_mobility(
            0,
            MobilityModel::Waypoints(vec![
                (Seconds(3.0), Point2::new(2.0, 0.0)),
                (Seconds(1.0), Point2::new(1.0, 0.0)),
                (Seconds(5.0), Point2::new(1.0, 1.0)),
            ]),
        );
        let mut sorted = small();
        sorted.set_mobility(
            0,
            MobilityModel::waypoints(vec![
                (Seconds(1.0), Point2::new(1.0, 0.0)),
                (Seconds(3.0), Point2::new(2.0, 0.0)),
                (Seconds(5.0), Point2::new(1.0, 1.0)),
            ]),
        );
        for tick in 0..=6 {
            let t = Seconds(tick as f64);
            shuffled.advance_to(t);
            sorted.advance_to(t);
            assert_eq!(
                shuffled.fleet().devices()[0].scenario.deployment.rx,
                sorted.fleet().devices()[0].scenario.deployment.rx,
                "trajectories must agree at t = {t:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "duplicate waypoint timestamps")]
    fn duplicate_waypoint_times_are_rejected() {
        let mut fleet = small();
        fleet.set_mobility(
            0,
            MobilityModel::Waypoints(vec![
                (Seconds(1.0), Point2::new(1.0, 0.0)),
                (Seconds(1.0), Point2::new(2.0, 0.0)),
            ]),
        );
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_waypoints_are_rejected() {
        MobilityModel::waypoints(vec![(Seconds(0.0), Point2::new(f64::NAN, 0.0))]);
    }

    #[test]
    fn crossing_blocker_occludes_by_line_of_sight() {
        // A body walking perpendicularly across device 0's link (tx at
        // the origin, rx on the x-axis) dims it only while the walk
        // actually crosses the segment, and never touches a link it
        // doesn't cross.
        let mut fleet = small();
        let rx = fleet.fleet().devices()[0].scenario.deployment.rx;
        let mid = Point2::new(rx.x / 2.0, 0.0);
        let human = devices::human::HumanTarget::resting_adult(Meters(2.0));
        fleet.add_blockage(Blockage::human_crossing(
            vec![
                (Seconds(0.0), mid + Point2::new(0.0, -3.0)),
                (Seconds(6.0), mid + Point2::new(0.0, 3.0)),
            ],
            &human,
        ));
        let base = fleet.fleet().devices()[0].scenario.tx_power;
        // Far from the link: clear.
        fleet.advance_to(Seconds(0.0));
        assert_eq!(fleet.fleet().devices()[0].scenario.tx_power, base);
        // Mid-walk the body stands on the segment: occluded by the
        // human blockage loss.
        fleet.advance_to(Seconds(3.0));
        let blocked = fleet.fleet().devices()[0].scenario.tx_power;
        let loss_db = 10.0 * (base.0 / blocked.0).log10();
        assert!((loss_db - human.blockage_loss_db().0).abs() < 1e-9);
        // Walked past: restored exactly.
        fleet.advance_to(Seconds(6.0));
        assert_eq!(fleet.fleet().devices()[0].scenario.tx_power, base);
    }

    #[test]
    fn turntable_mobility_starts_settled() {
        let model = MobilityModel::rotate(Degrees(-53.0), 4.0);
        match model {
            MobilityModel::Rotating { turntable, .. } => {
                assert!(turntable.settled());
                assert_eq!(turntable.position().0, -53.0);
            }
            other => panic!("unexpected model {other:?}"),
        }
    }
}
