//! Fault-injection contracts:
//!
//! * **empty-plan inertness** — a [`FaultPlan::none`] threaded through
//!   the warm [`MobilitySim`] engine reproduces the fault-free run
//!   *bitwise* on every tick (allocation, served powers, duty, applied
//!   biases), across random fleets, panel counts, mobility and
//!   assignment policies. The fault paths must never perturb a healthy
//!   world — not by a ULP;
//! * **mask inertness** — a healthy [`BiasFault`] installed on a
//!   [`FleetEvaluator`] leaves every probe bitwise unchanged, and an
//!   actually-stuck axis can never *improve* the best shared-bias probe
//!   (the feasible set only shrinks).

use llama_core::faults::{BiasFault, CellFaultKind, FaultPlan};
use llama_core::fleet::FleetEvaluator;
use llama_core::panels::{Assignment, PanelArray, PanelScheduler};
use llama_core::sim::{DynamicFleet, MobilitySim, SimConfig};
use llama_core::Fleet;
use metasurface::stack::BiasState;
use proptest::prelude::*;
use rfmath::units::{Degrees, Seconds, Volts};

/// A random heterogeneous fleet (same generator family as the fleet and
/// panel proptests).
fn fleet(max_devices: usize) -> BoxedStrategy<Fleet> {
    prop::collection::vec(0usize..3, 1..max_devices)
        .prop_map(|kinds| {
            let mut rng_state = 0x51D3_88A1_27B4_6C09u64 ^ (kinds.len() as u64);
            let mut next = move || {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                rng_state
            };
            let mut f = Fleet::new(metasurface::designs::fr4_optimized());
            for (i, kind) in kinds.iter().enumerate() {
                let deg = Degrees((next() % 180) as f64 - 90.0);
                let seed = next() % 1_000;
                f.push(match kind {
                    0 => llama_core::fleet::FleetDevice::wifi(
                        format!("w{i}"),
                        deg,
                        150.0 + (next() % 300) as f64,
                        seed,
                    ),
                    1 => llama_core::fleet::FleetDevice::ble(
                        format!("b{i}"),
                        deg,
                        150.0 + (next() % 300) as f64,
                        seed,
                    ),
                    _ => llama_core::fleet::FleetDevice::usrp(
                        format!("u{i}"),
                        deg,
                        30.0 + (next() % 80) as f64,
                        seed,
                    ),
                });
            }
            f
        })
        .boxed()
}

fn assignment() -> BoxedStrategy<Assignment> {
    prop_oneof![
        Just(Assignment::ByOrientation),
        Just(Assignment::RoundRobin),
        Just(Assignment::BestReference),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The PR-7 exactness bar: an empty fault plan in, the fault-free
    /// run out, bit for bit, even under mobility.
    #[test]
    fn an_empty_fault_plan_reproduces_the_fault_free_run_bitwise(
        n in 2usize..7,
        seed in 0u64..1_000,
        k in 1usize..3,
        asg in assignment(),
        ticks in 2usize..6,
    ) {
        let horizon = Seconds(ticks as f64);
        let scheduler = PanelScheduler::max_min().with_assignment(asg);
        let array = PanelArray::distributed(
            DynamicFleet::roaming_mixed(n, seed, horizon).fleet().design.clone(),
            k,
        );
        let plain = MobilitySim::new(scheduler.clone(), SimConfig::default())
            .run(&mut DynamicFleet::roaming_mixed(n, seed, horizon), &array, ticks);
        let faulted = MobilitySim::new(scheduler, SimConfig::default())
            .with_faults(FaultPlan::none())
            .run(&mut DynamicFleet::roaming_mixed(n, seed, horizon), &array, ticks);
        prop_assert_eq!(plain.handoffs, faulted.handoffs);
        for (i, (p, f)) in plain.ticks.iter().zip(&faulted.ticks).enumerate() {
            prop_assert!(
                p.outcome.same_allocation(&f.outcome),
                "tick {} diverged under an empty plan", i
            );
            prop_assert_eq!(
                p.served_min_power_dbm.to_bits(),
                f.served_min_power_dbm.to_bits()
            );
            prop_assert_eq!(
                p.served_throughput_bits_hz.to_bits(),
                f.served_throughput_bits_hz.to_bits()
            );
            for (a, b) in p.panel_duty.iter().zip(&f.panel_duty) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(&p.applied, &f.applied);
            prop_assert_eq!(p.outcome.probes, f.outcome.probes);
            prop_assert_eq!(f.outaged_panels, 0);
            prop_assert_eq!(f.fault_reassignments, 0);
            prop_assert_eq!(f.reports_lost, 0);
            prop_assert_eq!(f.psu_glitches, 0);
        }
    }

    /// A healthy mask is the identity; a stuck axis only shrinks the
    /// feasible bias set.
    #[test]
    fn healthy_masks_are_bitwise_identities(
        f in fleet(5),
        vx in 0.0f64..30.0,
        vy in 0.0f64..30.0,
        stuck in 0.0f64..30.0,
    ) {
        let bias = BiasState::new(vx, vy);
        let unmasked = FleetEvaluator::new(&f);
        let mut masked = FleetEvaluator::new(&f);
        masked.set_bias_fault(Some(BiasFault::default()));
        for (a, b) in unmasked.powers_dbm(bias).iter().zip(&masked.powers_dbm(bias)) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        // Stuck X: every probe behaves as if vx were the frozen value.
        let mut broken = FleetEvaluator::new(&f);
        broken.set_bias_fault(Some(BiasFault {
            x: Some(CellFaultKind::Stuck(Volts(stuck))),
            y: None,
        }));
        let expect = unmasked.powers_dbm(BiasState::new(stuck, vy));
        for (a, b) in broken.powers_dbm(bias).iter().zip(&expect) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // And the defect never helps the worst device at the probe the
        // healthy panel would have chosen among these two.
        let healthy_best = unmasked
            .powers_dbm(bias)
            .iter()
            .fold(f64::INFINITY, |m, &p| m.min(p));
        let healthy_alt = expect.iter().fold(f64::INFINITY, |m, &p| m.min(p));
        let broken_best = broken
            .powers_dbm(bias)
            .iter()
            .fold(f64::INFINITY, |m, &p| m.min(p));
        prop_assert!(broken_best <= healthy_best.max(healthy_alt) + 1e-9);
    }
}
