//! Mobility-simulator contracts:
//!
//! * **zero-velocity equivalence** — a [`DynamicFleet`] with no mobility
//!   models and no blockage events, driven through the warm
//!   [`MobilitySim`] engine, reproduces the static [`PanelScheduler`]
//!   allocation *exactly* on every tick, across random fleets, panel
//!   counts and assignment policies. Tick 0 because the simulator runs
//!   the very same cold search over the very same cached evaluators;
//!   later ticks because an unchanged world is reused outright. The
//!   comparison is bit-for-bit on biases, served powers, assignment and
//!   score (probe counts are excluded — a reused tick spends zero, and
//!   that *is* the warm engine's point);
//! * **mode agreement** — the warm engine and the memoryless cold
//!   baseline agree on every tick's allocation when nothing moves.

use llama_core::panels::{Assignment, PanelArray, PanelScheduler};
use llama_core::sim::{DynamicFleet, MobilitySim, SimConfig};
use llama_core::Fleet;
use proptest::prelude::*;
use rfmath::units::Degrees;

/// A random heterogeneous fleet (same generator family as the fleet and
/// panel proptests).
fn fleet(max_devices: usize) -> BoxedStrategy<Fleet> {
    prop::collection::vec(0usize..3, 1..max_devices)
        .prop_map(|kinds| {
            let mut rng_state = 0x51D3_88A1_27B4_6C09u64 ^ (kinds.len() as u64);
            let mut next = move || {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                rng_state
            };
            let mut f = Fleet::new(metasurface::designs::fr4_optimized());
            for (i, kind) in kinds.iter().enumerate() {
                let deg = Degrees((next() % 180) as f64 - 90.0);
                let seed = next() % 1_000;
                f.push(match kind {
                    0 => llama_core::fleet::FleetDevice::wifi(
                        format!("w{i}"),
                        deg,
                        150.0 + (next() % 300) as f64,
                        seed,
                    ),
                    1 => llama_core::fleet::FleetDevice::ble(
                        format!("b{i}"),
                        deg,
                        150.0 + (next() % 300) as f64,
                        seed,
                    ),
                    _ => llama_core::fleet::FleetDevice::usrp(
                        format!("u{i}"),
                        deg,
                        30.0 + (next() % 80) as f64,
                        seed,
                    ),
                });
            }
            f
        })
        .boxed()
}

fn assignment() -> BoxedStrategy<Assignment> {
    prop_oneof![
        Just(Assignment::ByOrientation),
        Just(Assignment::RoundRobin),
        Just(Assignment::BestReference),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The PR-5 exactness bar: zero velocity in, the static scheduler's
    /// allocation out, on every tick.
    #[test]
    fn zero_velocity_fleet_reproduces_the_static_scheduler(
        f in fleet(5),
        k in 1usize..4,
        asg in assignment(),
        ticks in 2usize..5,
    ) {
        let array = PanelArray::uniform(f.design.clone(), k);
        let scheduler = PanelScheduler::max_min().with_assignment(asg);
        let reference = scheduler.run(&f, &array);
        let mut dynamic = DynamicFleet::new(f);
        let report = MobilitySim::new(scheduler, SimConfig::default())
            .run(&mut dynamic, &array, ticks);
        prop_assert_eq!(report.ticks.len(), ticks);
        prop_assert_eq!(report.handoffs, 0);
        for (i, tick) in report.ticks.iter().enumerate() {
            prop_assert!(tick.moved.is_empty(), "tick {} dirtied a parked fleet", i);
            prop_assert!(
                tick.outcome.same_allocation(&reference),
                "tick {} diverged from the static allocation", i
            );
        }
        // Tick 0 pays the full static probe bill; later ticks are free.
        prop_assert_eq!(report.ticks[0].outcome.probes, reference.probes);
        for tick in &report.ticks[1..] {
            prop_assert_eq!(tick.outcome.probes, 0);
        }
    }

    /// Warm and cold engines agree tick for tick on a motionless world
    /// (the CI smoke pins the same property on the fixed workload).
    #[test]
    fn warm_and_cold_modes_agree_when_nothing_moves(
        f in fleet(4),
        k in 1usize..3,
    ) {
        let array = PanelArray::distributed(f.design.clone(), k);
        let scheduler = PanelScheduler::max_min();
        let warm = MobilitySim::new(scheduler.clone(), SimConfig::default())
            .run(&mut DynamicFleet::new(f.clone()), &array, 3);
        let cold = MobilitySim::new(scheduler, SimConfig::cold())
            .run(&mut DynamicFleet::new(f), &array, 3);
        for (w, c) in warm.ticks.iter().zip(&cold.ticks) {
            prop_assert!(w.outcome.same_allocation(&c.outcome));
        }
    }
}
