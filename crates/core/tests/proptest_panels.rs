//! Panel-engine contracts:
//!
//! * a K = 1 panel array is the degenerate case: the panel scheduler
//!   must reproduce the shared-bias `Scheduler` outcome *exactly* (same
//!   bias, same per-device powers, same probe count) across random
//!   fleets — the panel layer adds capability, never drift;
//! * the per-panel shared-plan batch path equals the naive per-device
//!   loop to 1e-12 across random fleets, panel counts and assignments
//!   (the PR-4 equivalence acceptance bar).

use llama_core::fleet::{Fleet, FleetDevice, Scheduler};
use llama_core::panels::{Assignment, PanelArray, PanelScheduler};
use metasurface::stack::BiasState;
use proptest::prelude::*;
use rfmath::units::Degrees;

/// A random heterogeneous fleet: 1..max devices of mixed radio classes,
/// orientations, distances and channel seeds (derived from a xorshift
/// stream so each drawn class vector yields a full device population).
fn fleet(max_devices: usize) -> BoxedStrategy<Fleet> {
    prop::collection::vec(0usize..3, 1..max_devices)
        .prop_map(|kinds| {
            let mut rng_state = 0x13A5_62E1_9C4F_07B5u64 ^ (kinds.len() as u64);
            let mut next = move || {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                rng_state
            };
            let mut f = Fleet::new(metasurface::designs::fr4_optimized());
            for (i, kind) in kinds.iter().enumerate() {
                let deg = Degrees((next() % 180) as f64 - 90.0);
                let seed = next() % 1_000;
                f.push(match kind {
                    0 => {
                        FleetDevice::wifi(format!("w{i}"), deg, 150.0 + (next() % 300) as f64, seed)
                    }
                    1 => {
                        FleetDevice::ble(format!("b{i}"), deg, 150.0 + (next() % 300) as f64, seed)
                    }
                    _ => FleetDevice::usrp(format!("u{i}"), deg, 30.0 + (next() % 80) as f64, seed),
                });
            }
            f
        })
        .boxed()
}

fn biases() -> BoxedStrategy<Vec<BiasState>> {
    prop::collection::vec((0.0f64..30.0, 0.0f64..30.0), 1..6)
        .prop_map(|v| v.into_iter().map(|(x, y)| BiasState::new(x, y)).collect())
        .boxed()
}

fn assignment() -> BoxedStrategy<Assignment> {
    prop_oneof![
        Just(Assignment::ByOrientation),
        Just(Assignment::RoundRobin),
        Just(Assignment::BestReference),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// K = 1 reproduces PR 3's shared-bias scheduler outcome exactly —
    /// not "to within tolerance": the degenerate array runs the very
    /// same search over the very same sub-fleet.
    #[test]
    fn single_panel_array_is_the_shared_bias_scheduler(f in fleet(5)) {
        let array = PanelArray::uniform(f.design.clone(), 1);
        let panel = PanelScheduler::max_min().run(&f, &array);
        let shared = Scheduler::max_min().run(&f);
        prop_assert_eq!(panel.assignment, vec![0; f.len()]);
        prop_assert_eq!(panel.probes, shared.probes);
        prop_assert_eq!(
            panel.per_panel[0].outcome.shared_bias,
            shared.shared_bias
        );
        prop_assert_eq!(panel.per_panel[0].outcome.score, shared.score);
        for (a, b) in panel.per_device.iter().zip(&shared.per_device) {
            prop_assert_eq!(a.power_dbm, b.power_dbm);
            prop_assert_eq!(a.bias, b.bias);
            prop_assert_eq!(a.throughput_bits_hz, b.throughput_bits_hz);
        }
        prop_assert_eq!(panel.min_power_dbm(), shared.min_power_dbm());
    }

    /// Per-panel batched probe matrices equal the naive per-device loop
    /// to 1e-12 across random fleets, panel counts and assignment
    /// policies.
    #[test]
    fn batched_panel_matrices_match_naive_loop(
        f in fleet(6),
        probes in biases(),
        k in 1usize..4,
        asg in assignment(),
    ) {
        let array = PanelArray::uniform(f.design.clone(), k);
        let map = array.assign(&f, &asg);
        let fast = array.batched_panel_matrices(&f, &map, &probes);
        let naive = array.naive_panel_matrices(&f, &map, &probes);
        prop_assert_eq!(fast.len(), k);
        for (p, (rows_fast, rows_naive)) in fast.iter().zip(&naive).enumerate() {
            prop_assert_eq!(rows_fast.len(), probes.len());
            for (b, (row_fast, row_naive)) in rows_fast.iter().zip(rows_naive).enumerate() {
                for (d, (a, n)) in row_fast.iter().zip(row_naive).enumerate() {
                    prop_assert!(
                        (a - n).abs() < 1e-12,
                        "panel {p} bias {b} member {d}: batched {a} vs naive {n}"
                    );
                }
            }
        }
    }
}
