//! Panel-engine contracts:
//!
//! * a K = 1 panel array is the degenerate case: the panel scheduler
//!   must reproduce the shared-bias `Scheduler` outcome *exactly* (same
//!   bias, same per-device powers, same probe count) across random
//!   fleets — the panel layer adds capability, never drift;
//! * the per-panel shared-plan batch path equals the naive per-device
//!   loop to 1e-12 across random fleets, panel counts and assignments
//!   (the PR-4 equivalence acceptance bar);
//! * assignment policies are deterministic under device permutation
//!   (stable tie-breaks — a fleet is a *set* of devices);
//! * the joint multi-surface search degenerates to the independent
//!   scheduler bit-for-bit at zero coupling, and its converged score is
//!   iteration-order independent at the convergence tolerance.

use llama_core::fleet::{Fleet, FleetDevice, Scheduler};
use llama_core::panels::{Assignment, JointConfig, PanelArray, PanelScheduler};
use metasurface::stack::BiasState;
use propagation::coupling::CouplingConfig;
use proptest::prelude::*;
use rfmath::units::Degrees;

/// A random heterogeneous fleet: 1..max devices of mixed radio classes,
/// orientations, distances and channel seeds (derived from a xorshift
/// stream so each drawn class vector yields a full device population).
fn fleet(max_devices: usize) -> BoxedStrategy<Fleet> {
    prop::collection::vec(0usize..3, 1..max_devices)
        .prop_map(|kinds| {
            let mut rng_state = 0x13A5_62E1_9C4F_07B5u64 ^ (kinds.len() as u64);
            let mut next = move || {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                rng_state
            };
            let mut f = Fleet::new(metasurface::designs::fr4_optimized());
            for (i, kind) in kinds.iter().enumerate() {
                let deg = Degrees((next() % 180) as f64 - 90.0);
                let seed = next() % 1_000;
                f.push(match kind {
                    0 => {
                        FleetDevice::wifi(format!("w{i}"), deg, 150.0 + (next() % 300) as f64, seed)
                    }
                    1 => {
                        FleetDevice::ble(format!("b{i}"), deg, 150.0 + (next() % 300) as f64, seed)
                    }
                    _ => FleetDevice::usrp(format!("u{i}"), deg, 30.0 + (next() % 80) as f64, seed),
                });
            }
            f
        })
        .boxed()
}

fn biases() -> BoxedStrategy<Vec<BiasState>> {
    prop::collection::vec((0.0f64..30.0, 0.0f64..30.0), 1..6)
        .prop_map(|v| v.into_iter().map(|(x, y)| BiasState::new(x, y)).collect())
        .boxed()
}

fn assignment() -> BoxedStrategy<Assignment> {
    prop_oneof![
        Just(Assignment::ByOrientation),
        Just(Assignment::RoundRobin),
        Just(Assignment::BestReference),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// K = 1 reproduces PR 3's shared-bias scheduler outcome exactly —
    /// not "to within tolerance": the degenerate array runs the very
    /// same search over the very same sub-fleet.
    #[test]
    fn single_panel_array_is_the_shared_bias_scheduler(f in fleet(5)) {
        let array = PanelArray::uniform(f.design.clone(), 1);
        let panel = PanelScheduler::max_min().run(&f, &array);
        let shared = Scheduler::max_min().run(&f);
        prop_assert_eq!(panel.assignment, vec![0; f.len()]);
        prop_assert_eq!(panel.probes, shared.probes);
        prop_assert_eq!(
            panel.per_panel[0].outcome.shared_bias,
            shared.shared_bias
        );
        prop_assert_eq!(panel.per_panel[0].outcome.score, shared.score);
        for (a, b) in panel.per_device.iter().zip(&shared.per_device) {
            prop_assert_eq!(a.power_dbm, b.power_dbm);
            prop_assert_eq!(a.bias, b.bias);
            prop_assert_eq!(a.throughput_bits_hz, b.throughput_bits_hz);
        }
        prop_assert_eq!(panel.min_power_dbm(), shared.min_power_dbm());
    }

    /// Per-panel batched probe matrices equal the naive per-device loop
    /// to 1e-12 across random fleets, panel counts and assignment
    /// policies.
    #[test]
    fn batched_panel_matrices_match_naive_loop(
        f in fleet(6),
        probes in biases(),
        k in 1usize..4,
        asg in assignment(),
    ) {
        let array = PanelArray::uniform(f.design.clone(), k);
        let map = array.assign(&f, &asg);
        let fast = array.batched_panel_matrices(&f, &map, &probes);
        let naive = array.naive_panel_matrices(&f, &map, &probes);
        prop_assert_eq!(fast.len(), k);
        for (p, (rows_fast, rows_naive)) in fast.iter().zip(&naive).enumerate() {
            prop_assert_eq!(rows_fast.len(), probes.len());
            for (b, (row_fast, row_naive)) in rows_fast.iter().zip(rows_naive).enumerate() {
                for (d, (a, n)) in row_fast.iter().zip(row_naive).enumerate() {
                    prop_assert!(
                        (a - n).abs() < 1e-12,
                        "panel {p} bias {b} member {d}: batched {a} vs naive {n}"
                    );
                }
            }
        }
    }
}

/// Rebuilds `f` with its devices pushed in `perm` order; position `j`
/// of the result holds original device `perm[j]`.
fn permute_fleet(f: &Fleet, perm: &[usize]) -> Fleet {
    let mut g = Fleet::new(f.design.clone());
    for &j in perm {
        g.push(f.devices()[j].clone());
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A fleet is a *set* of devices: shuffling their push order must
    /// not change which panel any individual device is served by, for
    /// both the geometric policy and the measured-power greedy (whose
    /// tie-breaks are required to be fleet-order free).
    #[test]
    fn assignment_policies_are_permutation_stable(
        f in fleet(6),
        seed in any::<u64>(),
        k in 1usize..4,
        distributed in any::<bool>(),
    ) {
        // Fisher–Yates from the drawn seed: an arbitrary reordering of
        // the fleet's push order.
        let mut perm: Vec<usize> = (0..f.len()).collect();
        let mut s = seed | 1;
        for i in (1..perm.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            perm.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let array = if distributed {
            PanelArray::distributed(f.design.clone(), k)
        } else {
            PanelArray::uniform(f.design.clone(), k)
        };
        let shuffled = permute_fleet(&f, &perm);
        for asg in [Assignment::ByOrientation, Assignment::BestReference] {
            let base = array.assign(&f, &asg);
            let permuted = array.assign(&shuffled, &asg);
            for (j, &orig) in perm.iter().enumerate() {
                prop_assert!(
                    base[orig] == permuted[j],
                    "{:?}: device {} served by panel {} in fleet order but {} when pushed {}th",
                    asg, orig, base[orig], permuted[j], j
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole equivalence gate: with coupling disabled the joint
    /// mode IS the independent scheduler — same assignment, same panel
    /// biases, same per-device powers, bit-for-bit, at the same probe
    /// bill, across random fleets and panel counts.
    #[test]
    fn zero_coupling_joint_is_independent_bitwise(f in fleet(5), k in 2usize..4) {
        let array = PanelArray::distributed(f.design.clone(), k);
        let independent = PanelScheduler::max_min().run(&f, &array);
        let joint = PanelScheduler::max_min()
            .with_joint(JointConfig {
                coupling: CouplingConfig::disabled(),
                ..JointConfig::default()
            })
            .run(&f, &array);
        prop_assert!(joint.same_allocation(&independent));
        prop_assert_eq!(joint.probes, independent.probes);
        let stats = joint.joint.expect("joint mode reports its stats");
        prop_assert_eq!(stats.rounds, 0);
        prop_assert_eq!(stats.coupled_probes, 0);
        prop_assert_eq!(stats.cross_energy_fraction, 0.0);
        prop_assert_eq!(stats.lift_db, 0.0);
    }

    /// At the convergence tolerance the block-coordinate descent's
    /// fixed point does not depend on which end of the panel vector the
    /// sweep starts from, and neither direction ever loses to the
    /// independent biases it started at.
    #[test]
    fn joint_search_is_iteration_order_independent(f in fleet(5), k in 2usize..4) {
        let array = PanelArray::distributed(f.design.clone(), k);
        let cfg = JointConfig::default();
        let forward = PanelScheduler::max_min().with_joint(cfg).run(&f, &array);
        let reversed = PanelScheduler::max_min()
            .with_joint(JointConfig { reverse_order: true, ..cfg })
            .run(&f, &array);
        let fs = forward.joint.expect("joint stats");
        let rs = reversed.joint.expect("joint stats");
        prop_assert!(fs.lift_db >= -1e-9);
        prop_assert!(rs.lift_db >= -1e-9);
        if fs.converged && rs.converged {
            prop_assert!(
                (forward.score - reversed.score).abs() <= 2.0 * cfg.tolerance_db,
                "converged scores diverge across iteration order: forward {} vs reversed {}",
                forward.score,
                reversed.score
            );
        }
    }
}
