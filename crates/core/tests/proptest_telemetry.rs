//! Telemetry-plane contracts:
//!
//! * **null-recorder inertness** — a [`RecorderHandle::null`] threaded
//!   through the warm [`MobilitySim`] engine reproduces the
//!   recorder-absent run *bitwise* on every tick (allocation, served
//!   powers, throughput, duty, applied biases), across random fleets,
//!   panel counts and assignment policies. Observability must cost
//!   nothing — not a ULP — when nobody is listening;
//! * **ring determinism** — the JSONL event log of a seeded chaos-style
//!   scenario (scripted outage, warm engine) is byte-identical across
//!   reruns: events carry only logical `(seq, tick)` stamps and
//!   seed-deterministic payloads, never wall-clock.

use std::sync::Arc;

use llama_core::faults::{FaultPlan, FaultWindow, PanelOutage};
use llama_core::panels::{Assignment, PanelArray, PanelScheduler};
use llama_core::sim::{DynamicFleet, MobilitySim, SimConfig};
use llama_core::telemetry::{RecorderHandle, RingRecorder};
use proptest::prelude::*;
use rfmath::units::Seconds;

fn assignment() -> BoxedStrategy<Assignment> {
    prop_oneof![
        Just(Assignment::ByOrientation),
        Just(Assignment::RoundRobin),
        Just(Assignment::BestReference),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole exactness bar: attaching the null recorder is
    /// invisible, bit for bit, even under mobility.
    #[test]
    fn a_null_recorder_reproduces_the_recorder_absent_run_bitwise(
        n in 2usize..7,
        seed in 0u64..1_000,
        k in 1usize..3,
        asg in assignment(),
        ticks in 2usize..6,
    ) {
        let horizon = Seconds(ticks as f64);
        let scheduler = PanelScheduler::max_min().with_assignment(asg);
        let array = PanelArray::distributed(
            DynamicFleet::roaming_mixed(n, seed, horizon).fleet().design.clone(),
            k,
        );
        let plain = MobilitySim::new(scheduler.clone(), SimConfig::default())
            .run(&mut DynamicFleet::roaming_mixed(n, seed, horizon), &array, ticks);
        let recorded = MobilitySim::new(scheduler, SimConfig::default())
            .with_recorder(RecorderHandle::null())
            .run(&mut DynamicFleet::roaming_mixed(n, seed, horizon), &array, ticks);
        prop_assert_eq!(plain.handoffs, recorded.handoffs);
        for (i, (p, r)) in plain.ticks.iter().zip(&recorded.ticks).enumerate() {
            prop_assert!(
                p.outcome.same_allocation(&r.outcome),
                "tick {} diverged under a null recorder", i
            );
            prop_assert_eq!(
                p.served_min_power_dbm.to_bits(),
                r.served_min_power_dbm.to_bits()
            );
            prop_assert_eq!(
                p.served_throughput_bits_hz.to_bits(),
                r.served_throughput_bits_hz.to_bits()
            );
            for (a, b) in p.panel_duty.iter().zip(&r.panel_duty) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(&p.applied, &r.applied);
            prop_assert_eq!(p.outcome.probes, r.outcome.probes);
        }
    }
}

/// One traced run of a seeded chaos-style scenario: a roaming fleet
/// over two panels, with the chaos harness's scripted mid-run outage of
/// panel 0. Returns the ring's JSONL log.
fn traced_chaos_jsonl(seed: u64) -> String {
    let ticks = 10usize;
    let horizon = Seconds(ticks as f64);
    let mut plan = FaultPlan::with_rates(seed, 0.05, 0.05, 0.05);
    plan.outages.push(PanelOutage {
        panel: 0,
        window: FaultWindow {
            start: Seconds(3.0),
            duration: Seconds(3.0),
        },
    });
    let mut fleet = DynamicFleet::roaming_mixed(6, seed, horizon);
    let array = PanelArray::distributed(fleet.fleet().design.clone(), 2);
    let ring = Arc::new(RingRecorder::default());
    MobilitySim::new(PanelScheduler::max_min(), SimConfig::default())
        .with_faults(plan)
        .with_recorder(RecorderHandle::new(ring.clone()))
        .run(&mut fleet, &array, ticks);
    ring.events_jsonl()
}

#[test]
fn ring_event_order_is_deterministic_across_reruns_of_a_seeded_chaos_scenario() {
    let first = traced_chaos_jsonl(2021);
    let second = traced_chaos_jsonl(2021);
    assert!(!first.is_empty());
    assert_eq!(first, second, "same-seed chaos reruns must log identically");
    // The scripted outage edge is in the log, with logical stamps only.
    assert!(first.contains("\"type\": \"fault_injected\""));
    assert!(first.contains("\"type\": \"tick_phase\""));
    assert!(first.starts_with("{\"seq\": 0, \"tick\": 0,"));
}
