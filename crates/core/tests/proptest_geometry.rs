//! Geometry-promotion contracts: the 2-D room coordinates must not
//! change any answer the scalar geometry used to give.
//!
//! * **Collinear bit-compatibility** — a 2-D `Deployment` with all
//!   endpoints on a line reproduces the pre-refactor scalar geometry
//!   *bit for bit*: engineered path lengths equal the legacy closed
//!   forms (`d`, `d + 2·f·d` transmissive; `sep`,
//!   `2·√(standoff² + (sep/2)²)` reflective), and the full link
//!   (engineered + environment scatter) yields bitwise-identical
//!   received power however the collinear deployment was spelled —
//!   far inside the 1e-12 acceptance bar.
//! * **Rigid-motion invariance** — rotating + translating a whole room
//!   changes nothing physical, so received power and the max-min fleet
//!   allocation agree with the collinear original to a phase-safe
//!   1e-9 (coordinate rounding enters through propagation phase, which
//!   deep scatter fades amplify; the collinear case stays exact).

use llama_core::fleet::{Fleet, FleetDevice, Scheduler};
use llama_core::scenario::Scenario;
use metasurface::response::Metasurface;
use metasurface::stack::BiasState;
use propagation::rays::{engineered_paths, Deployment, SurfaceMount};
use proptest::prelude::*;
use rfmath::units::{Hertz, Meters};
use rfmath::vec2::Point2;

/// Rigid motion: rotate by `theta` about the origin, then translate.
fn rigid(p: Point2, theta: f64, shift: Point2) -> Point2 {
    let (s, c) = theta.sin_cos();
    Point2::new(c * p.x - s * p.y + shift.x, s * p.x + c * p.y + shift.y)
}

fn rigid_deployment(d: Deployment, theta: f64, shift: Point2) -> Deployment {
    let surface = match d.surface {
        SurfaceMount::None => SurfaceMount::None,
        SurfaceMount::Transmissive { position } => SurfaceMount::Transmissive {
            position: rigid(position, theta, shift),
        },
        SurfaceMount::Reflective { position } => SurfaceMount::Reflective {
            position: rigid(position, theta, shift),
        },
    };
    Deployment::room(
        rigid(d.tx, theta, shift),
        rigid(d.rx, theta, shift),
        surface,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Coordinate-derived path lengths equal the legacy scalar closed
    /// forms bit for bit, for any collinear layout.
    #[test]
    fn collinear_path_lengths_match_scalar_formulas_bitwise(
        d in 0.2f64..6.0,
        frac in 0.0f64..1.0,
        standoff in 0.1f64..1.5,
    ) {
        let f = Hertz(2.44e9);
        let surface = Metasurface::llama();
        let response = surface.response(f);

        let trans = engineered_paths(Deployment::transmissive(Meters(d), frac), Some(&response), f);
        let d1 = d * frac.clamp(0.05, 0.95);
        prop_assert_eq!(trans[0].length.0.to_bits(), d.to_bits());
        prop_assert_eq!(trans[1].length.0.to_bits(), (d + 2.0 * d1).to_bits());
        prop_assert_eq!(
            Deployment::transmissive(Meters(d), frac).aperture_obliquity().to_bits(),
            1.0f64.to_bits()
        );

        let refl = engineered_paths(
            Deployment::reflective(Meters(d), Meters(standoff)),
            Some(&response),
            f,
        );
        let half = d / 2.0;
        let fold = 2.0 * (standoff * standoff + half * half).sqrt();
        prop_assert_eq!(refl[0].length.0.to_bits(), d.to_bits());
        prop_assert_eq!(refl[1].length.0.to_bits(), fold.to_bits());
    }

    /// The full link — legacy constructors, scatter environment and all
    /// — produces bitwise-identical received power whether the collinear
    /// deployment came from the 1-D convenience constructors or from
    /// explicitly spelled room coordinates on the x-axis.
    #[test]
    fn collinear_room_reproduces_legacy_received_power_bitwise(
        cm in 60.0f64..400.0,
        frac in 0.1f64..0.9,
        seed in 0u64..1_000,
        vx in 0.0f64..30.0,
        vy in 0.0f64..30.0,
    ) {
        let mut legacy = Scenario::wifi_iot_default()
            .with_distance_cm(cm)
            .with_seed(seed);
        let mut via_room = legacy.clone();
        let d = Meters::from_cm(cm).0;
        via_room.deployment = Deployment::room(
            Point2::ORIGIN,
            Point2::new(d, 0.0),
            SurfaceMount::Transmissive {
                position: Point2::new(d * 0.5, 0.0),
            },
        ).with_surface_fraction(frac);
        legacy.deployment = legacy.deployment.with_surface_fraction(frac);

        let mut surface = Metasurface::new(legacy.design.clone());
        surface.set_bias(BiasState::new(vx, vy));
        let a = legacy.link().received_power(Some(&surface)).0;
        let b = via_room.link().received_power(Some(&surface)).0;
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }

    /// Rotating + translating the room is physically inert: received
    /// power tracks the collinear original to 1e-9 relative (phase
    /// sensitivity amplifies the coordinate rounding; the collinear
    /// case is covered bitwise above).
    #[test]
    fn rigid_motion_leaves_received_power_unchanged(
        cm in 60.0f64..400.0,
        theta in 0.0f64..std::f64::consts::TAU,
        sx in -5.0f64..5.0,
        sy in -5.0f64..5.0,
        seed in 0u64..1_000,
    ) {
        let base = Scenario::wifi_iot_default()
            .with_distance_cm(cm)
            .with_seed(seed);
        let mut moved = base.clone();
        moved.deployment = rigid_deployment(base.deployment, theta, Point2::new(sx, sy));

        let mut surface = Metasurface::new(base.design.clone());
        surface.set_bias(BiasState::new(9.0, 4.0));
        let a = base.link().received_power(Some(&surface)).0;
        let b = moved.link().received_power(Some(&surface)).0;
        let rel = (a - b).abs() / a.abs().max(b.abs());
        prop_assert!(rel < 1e-9, "relative power drift {rel:e} under rigid motion");
    }

    /// The max-min fleet allocation agrees between a collinear fleet
    /// and the same fleet spelled in room coordinates: identical shared
    /// bias, per-device powers bitwise for the axis-aligned rewrite and
    /// within 1e-9 dB under rigid motion.
    #[test]
    fn fleet_allocation_is_geometry_invariant(
        n in 2usize..5,
        theta in 0.0f64..std::f64::consts::TAU,
        seed in 0u64..500,
    ) {
        let shift = Point2::new(2.0, -1.0);
        let collinear = Fleet::mixed_wifi_ble(n, seed);
        let mut moved = Fleet::new(collinear.design.clone());
        for dev in collinear.devices() {
            let dep = rigid_deployment(dev.scenario.deployment, theta, shift);
            moved.push(FleetDevice::clone(dev).placed(dep));
        }

        let a = Scheduler::max_min().run(&collinear);
        let b = Scheduler::max_min().run(&moved);
        prop_assert_eq!(a.shared_bias, b.shared_bias);
        for (da, db) in a.per_device.iter().zip(&b.per_device) {
            prop_assert!(
                (da.power_dbm - db.power_dbm).abs() < 1e-9,
                "{}: {} vs {} dBm",
                da.label,
                da.power_dbm,
                db.power_dbm
            );
        }
    }
}

/// Non-proptest spot check: the walking convenience stays a thin
/// wrapper — `MobilityModel::walk` waypoints land on the x-axis at the
/// exact centimeter-converted positions.
#[test]
fn walk_wrapper_is_axis_aligned() {
    use llama_core::sim::MobilityModel;
    use rfmath::units::Seconds;
    let MobilityModel::Waypoints(points) =
        MobilityModel::walk(150.0, 300.0, Seconds(1.0), Seconds(4.0))
    else {
        panic!("walk must build a waypoint model");
    };
    assert_eq!(points[0].1, Point2::new(1.5, 0.0));
    assert_eq!(points[1].1, Point2::new(3.0, 0.0));
    assert_eq!(points[0].0, Seconds(1.0));
    assert_eq!(points[1].0, Seconds(4.0));
}
