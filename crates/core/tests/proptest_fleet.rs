//! Fleet-engine contracts:
//!
//! * the shared-plan batch path equals the naive per-device loop to
//!   1e-12 across random fleets and bias lists (the PR's equivalence
//!   acceptance bar);
//! * the `MaxMin` scheduler's score is ≥ the worst link of *every*
//!   probed shared bias (it is the arg-max of the min — no probed
//!   compromise can beat it).

use llama_core::fleet::{Fleet, FleetDevice, FleetEvaluator, Scheduler};
use metasurface::stack::BiasState;
use proptest::prelude::*;
use rfmath::units::Degrees;

/// A random heterogeneous fleet: 1..max devices of mixed radio classes,
/// orientations, distances and channel seeds (derived from a xorshift
/// stream so each drawn class vector yields a full device population).
fn fleet(max_devices: usize) -> BoxedStrategy<Fleet> {
    prop::collection::vec(0usize..3, 1..max_devices)
        .prop_map(|kinds| {
            let mut rng_state = 0x243F_6A88_85A3_08D3u64 ^ (kinds.len() as u64);
            let mut next = move || {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                rng_state
            };
            let mut f = Fleet::new(metasurface::designs::fr4_optimized());
            for (i, kind) in kinds.iter().enumerate() {
                let deg = Degrees((next() % 180) as f64 - 90.0);
                let seed = next() % 1_000;
                f.push(match kind {
                    0 => {
                        FleetDevice::wifi(format!("w{i}"), deg, 150.0 + (next() % 300) as f64, seed)
                    }
                    1 => {
                        FleetDevice::ble(format!("b{i}"), deg, 150.0 + (next() % 300) as f64, seed)
                    }
                    _ => FleetDevice::usrp(format!("u{i}"), deg, 30.0 + (next() % 80) as f64, seed),
                });
            }
            f
        })
        .boxed()
}

fn biases() -> BoxedStrategy<Vec<BiasState>> {
    prop::collection::vec((0.0f64..30.0, 0.0f64..30.0), 1..8)
        .prop_map(|v| v.into_iter().map(|(x, y)| BiasState::new(x, y)).collect())
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batched == naive per-receiver powers to 1e-12, across random
    /// heterogeneous fleets (mixed radios, deployments, rooms) and
    /// random bias lists.
    #[test]
    fn batched_fleet_powers_match_naive_loop(f in fleet(6), probes in biases()) {
        let evaluator = FleetEvaluator::new(&f);
        let fast = evaluator.powers_matrix(&probes);
        let naive = f.naive_powers_matrix(&probes);
        for (b, (row_fast, row_naive)) in fast.iter().zip(&naive).enumerate() {
            for (d, (a, n)) in row_fast.iter().zip(row_naive).enumerate() {
                prop_assert!(
                    (a - n).abs() < 1e-12,
                    "bias {b} device {d}: batched {a} vs naive {n}"
                );
            }
        }
    }

    /// The MaxMin allocation is at least as good (for the worst link) as
    /// every shared bias the search probed.
    #[test]
    fn max_min_dominates_every_probed_bias(f in fleet(5), _pad in 0u8..2) {
        let outcome = Scheduler::max_min().run(&f);
        for (bias, powers) in &outcome.history {
            let worst = powers.iter().copied().fold(f64::INFINITY, f64::min);
            prop_assert!(
                outcome.score >= worst - 1e-12,
                "probed bias {bias:?} has worst link {worst:.3} dBm above the \
                 scheduler's {:.3} dBm",
                outcome.score
            );
        }
        // And the reported per-device powers are exactly the winner's.
        let worst_reported = outcome
            .per_device
            .iter()
            .map(|d| d.power_dbm)
            .fold(f64::INFINITY, f64::min);
        prop_assert!((outcome.score - worst_reported).abs() < 1e-12);
    }
}
