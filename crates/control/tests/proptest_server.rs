//! Property tests for the sharded work-stealing [`FleetServer`]: for
//! any job list, worker count and shard count, the results must be
//! *bit-identical* to a serial in-order run of the same handler — the
//! sharded queue and steal traffic may reorder execution, but never the
//! output — and the run telemetry must stay self-consistent.

use control::server::{FleetServer, JobError};
use proptest::prelude::*;

/// A float-heavy pure handler: transcendental enough that any change in
/// evaluation order or double rounding shows up in the result bits.
fn churn(idx: usize, x: f64) -> f64 {
    let mut acc = x;
    for k in 0..8 {
        acc = (acc + idx as f64 * 0.37).sin() * 1.618 + (acc * 0.25 + k as f64).cos();
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded execution is bit-identical to the serial loop for shard
    /// counts {1, 2, 7, N} at every worker count.
    #[test]
    fn sharded_matches_serial_bitwise(
        jobs in prop::collection::vec(-100.0f64..100.0, 0..48),
        workers in 1usize..5,
    ) {
        let serial: Vec<u64> = jobs
            .iter()
            .enumerate()
            .map(|(idx, &x)| churn(idx, x).to_bits())
            .collect();
        let n = jobs.len();
        for shards in [1usize, 2, 7, n.max(1)] {
            let server = FleetServer::new(workers).with_shards(shards);
            let (results, stats) =
                server.try_serve_with_stats(jobs.clone(), churn);
            prop_assert_eq!(results.len(), n);
            for (idx, result) in results.iter().enumerate() {
                match result {
                    Ok(value) => prop_assert!(
                        value.to_bits() == serial[idx],
                        "job {} diverged under {} shards / {} workers",
                        idx,
                        shards,
                        workers
                    ),
                    Err(err) => prop_assert!(false, "job {} failed: {}", idx, err),
                }
            }
            prop_assert_eq!(stats.completed, n);
            prop_assert_eq!(stats.failed, 0);
            prop_assert_eq!(stats.shards, shards);
            prop_assert!(stats.mean_queue_wait.0 >= 0.0);
            prop_assert!(stats.workers_used <= workers);
            if n > 0 {
                prop_assert!(stats.workers_used >= 1);
            }
        }
    }

    /// A panicking job fails alone: every sibling still returns its
    /// serial-identical result, in submission order.
    #[test]
    fn poisoned_job_cannot_strand_siblings(
        jobs in prop::collection::vec(-50.0f64..50.0, 1..24),
        poison in 0usize..24,
        workers in 1usize..4,
        shards in 1usize..8,
    ) {
        let poison = poison % jobs.len();
        let server = FleetServer::new(workers).with_shards(shards);
        let (results, stats) = server.try_serve_with_stats(jobs.clone(), |idx, x| {
            assert!(idx != poison, "poisoned fleet");
            churn(idx, x)
        });
        for (idx, result) in results.iter().enumerate() {
            if idx == poison {
                prop_assert!(matches!(result, Err(JobError::Panicked(_))));
            } else {
                let expect = churn(idx, jobs[idx]).to_bits();
                match result {
                    Ok(value) => prop_assert_eq!(value.to_bits(), expect),
                    Err(err) => prop_assert!(false, "job {} failed: {}", idx, err),
                }
            }
        }
        prop_assert_eq!(stats.failed, 1);
        prop_assert_eq!(stats.completed, jobs.len());
    }
}
