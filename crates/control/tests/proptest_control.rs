//! Property-based tests for the control plane: sweep envelopes, Eq. 13
//! labeling consistency, SCPI round-trips under arbitrary inputs, and
//! PSU rate-limit invariants.

use control::psu::{PowerSupply, Reply};
use control::scpi;
use control::sweep::{coarse_to_fine, SweepConfig};
use control::sync::BiasSchedule;
use proptest::prelude::*;
use rfmath::units::{Seconds, Volts};

proptest! {
    /// The sweep's probe count and duration match the 0.02·N·T² law for
    /// any (N, T) configuration.
    #[test]
    fn sweep_cost_law(n in 1usize..4, t in 2usize..9) {
        let cfg = SweepConfig {
            iterations: n,
            steps_per_axis: t,
            v_min: Volts(0.0),
            v_max: Volts(30.0),
            switch_period: Seconds(0.02),
        };
        let outcome = coarse_to_fine(&cfg, |p| -(p.vx.0 + p.vy.0));
        prop_assert_eq!(outcome.probes, n * t * t);
        prop_assert!((outcome.duration.0 - 0.02 * (n * t * t) as f64).abs() < 1e-12);
    }

    /// Probes never leave the configured voltage window.
    #[test]
    fn probes_stay_in_window(
        lo in 0.0f64..10.0,
        span in 5.0f64..20.0,
        peak_x in 0.0f64..30.0,
        peak_y in 0.0f64..30.0,
    ) {
        let cfg = SweepConfig {
            iterations: 2,
            steps_per_axis: 5,
            v_min: Volts(lo),
            v_max: Volts(lo + span),
            switch_period: Seconds(0.02),
        };
        let outcome = coarse_to_fine(&cfg, |p| {
            -((p.vx.0 - peak_x).powi(2) + (p.vy.0 - peak_y).powi(2))
        });
        for (probe, _) in &outcome.history {
            prop_assert!(probe.vx.0 >= lo - 1e-9 && probe.vx.0 <= lo + span + 1e-9);
            prop_assert!(probe.vy.0 >= lo - 1e-9 && probe.vy.0 <= lo + span + 1e-9);
        }
    }

    /// Eq. 13 labeling is self-consistent: the state reported for any
    /// in-schedule time equals the state list entry at the reported
    /// index, for any offset.
    #[test]
    fn eq13_index_state_agree(
        td_ms in 0.0f64..20.0,
        t_ms in 0.0f64..400.0,
        count in 2usize..30,
    ) {
        let s = BiasSchedule::linear(
            Seconds(0.0),
            Seconds(0.02),
            (Volts(1.0), Volts(2.0)),
            (Volts(0.5), Volts(0.25)),
            count,
        );
        let t = Seconds(t_ms / 1e3 + td_ms / 1e3);
        let td = Seconds(td_ms / 1e3);
        match (s.index_at(t, td), s.state_at(t, td)) {
            (Some(idx), Some(state)) => {
                prop_assert_eq!(state, s.states[idx]);
            }
            (None, None) => {}
            // state_at may return a state while index_at bounds-checks:
            // both must agree on in-range times.
            (a, b) => prop_assert!(
                a.is_none() == b.is_none() || t.0 - td.0 >= s.duration().0,
                "index {a:?} vs state {b:?}"
            ),
        }
    }

    /// SCPI APPL commands round-trip for arbitrary channel/voltage.
    #[test]
    fn scpi_apply_round_trip(ch in 1u8..=3, v in 0.0f64..99.0) {
        let wire = format!("APPL CH{ch},{v}");
        let cmd = scpi::parse(&wire).expect("parse");
        let back = scpi::format_command(&cmd);
        prop_assert_eq!(scpi::parse(&back).unwrap(), cmd);
    }

    /// The SCPI parser never panics on arbitrary ASCII lines.
    #[test]
    fn scpi_never_panics(line in "[ -~]{0,40}") {
        let _ = scpi::parse(&line);
    }

    /// The PSU accepts switches exactly at its period and rejects any
    /// faster cadence, regardless of the requested voltages.
    #[test]
    fn psu_rate_limit_invariant(
        dt_ms in 0.1f64..60.0,
        v1 in 0.0f64..30.0,
        v2 in 0.0f64..30.0,
    ) {
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        assert_eq!(psu.execute(&format!("APPL CH1,{v1}"), Seconds(1.0)), Reply::Ack);
        let second = psu.execute(&format!("APPL CH1,{v2}"), Seconds(1.0 + dt_ms / 1e3));
        if dt_ms >= 20.0 {
            prop_assert_eq!(second, Reply::Ack);
        } else {
            prop_assert!(matches!(second, Reply::Error(_)), "accepted at {dt_ms} ms");
        }
    }
}
