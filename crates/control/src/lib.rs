//! # control — the LLAMA control plane
//!
//! Everything between a receiver's power reports and the metasurface's
//! bias rails:
//!
//! * [`scpi`] — the SCPI command dialect the programmable supply speaks;
//! * [`psu`] — the Tektronix 2230G model: two 0–30 V rails, a 50 Hz
//!   switching budget, settling, and leakage metering;
//! * [`sweep`] — Algorithm 1, the coarse-to-fine (N, T) bias search that
//!   turns a ~30 s full scan into ~1 s;
//! * [`sync`] — Eq. (13) sample-to-voltage-state labeling and the
//!   clock-offset estimator that replaces a dedicated sync device;
//! * [`estimator`] — the §3.4 turntable procedure measuring how many
//!   degrees the surface actually rotated the wave;
//! * [`controller`] — the centralized state machine that ties it all
//!   together, with report-loss recovery and an audit log;
//! * [`server`] — the async many-fleet front: a bounded task queue and
//!   scoped worker pool multiplexing many per-fleet optimizations under
//!   one controller process, with the controller's corrupt-report
//!   admission rule.
//!
//! ```
//! use control::sweep::{coarse_to_fine, SweepConfig};
//!
//! // Algorithm 1 on a synthetic power surface peaking at (17 V, 8 V).
//! let outcome = coarse_to_fine(&SweepConfig::paper_default(), |p| {
//!     -((p.vx.0 - 17.0).powi(2) + (p.vy.0 - 8.0).powi(2))
//! });
//! assert!((outcome.best.vx.0 - 17.0).abs() < 2.0);
//! // The paper's N = 2, T = 5 search costs 50 probes ≈ 1 s at 50 Hz.
//! assert_eq!(outcome.probes, 50);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod controller;
pub mod estimator;
pub mod psu;
pub mod scpi;
pub mod server;
pub mod sweep;
pub mod sync;

pub use controller::{Controller, Event, Phase, PowerReport, RetryPolicy};
pub use estimator::{estimate_rotation, RotationEstimate, RotationRig};
pub use psu::{PowerSupply, PsuError, Reply};
pub use server::{FleetServer, JobError, ServeStats};
pub use sweep::{
    coarse_to_fine, coarse_to_fine_multi_traced, warm_refine_multi, warm_refine_multi_traced,
    Probe, SweepConfig, SweepOutcome, WarmConfig,
};
pub use sync::{estimate_offset, label_samples, BiasSchedule};
