//! Sample–voltage synchronization (paper §3.3, Eq. 13).
//!
//! During a sweep, the receiver streams power samples while the supply
//! steps the bias; the controller must attribute each sample to the
//! voltage state it was captured under. Instead of a dedicated sync
//! device, LLAMA exploits that both the receiver's sampling rate and the
//! supply's switching cadence are constant: a sample at time `t` maps to
//! the voltage state index `(t − td)/Ts`, where `Ts` is the switching
//! period and `td` the start-time offset between the two clocks. The
//! offset is estimated by correlating the observed power steps against
//! the commanded switching grid.

use rfmath::units::{Seconds, Volts};

/// The commanded bias schedule: voltage states applied at a constant
/// cadence from a start time.
#[derive(Clone, Debug)]
pub struct BiasSchedule {
    /// Time the first state was applied (supply clock).
    pub start: Seconds,
    /// Switching period `Ts`.
    pub period: Seconds,
    /// The applied (Vx, Vy) states, in order.
    pub states: Vec<(Volts, Volts)>,
}

impl BiasSchedule {
    /// Builds a schedule from equal X/Y steps (Eq. 13's `VD` increments).
    pub fn linear(
        start: Seconds,
        period: Seconds,
        v0: (Volts, Volts),
        dv: (Volts, Volts),
        count: usize,
    ) -> Self {
        let states = (0..count)
            .map(|k| {
                (
                    Volts(v0.0 .0 + dv.0 .0 * k as f64),
                    Volts(v0.1 .0 + dv.1 .0 * k as f64),
                )
            })
            .collect();
        Self {
            start,
            period,
            states,
        }
    }

    /// Eq. 13: the voltage state in force at receiver time `t`, given
    /// the known receiver→supply clock offset `td` (positive when the
    /// receiver started later). `None` before the schedule begins or
    /// after it ends.
    pub fn state_at(&self, t: Seconds, td: Seconds) -> Option<(Volts, Volts)> {
        let supply_time = t.0 - td.0;
        let k = (supply_time - self.start.0) / self.period.0;
        if k < 0.0 {
            return None;
        }
        let idx = k.floor() as usize;
        self.states.get(idx).copied()
    }

    /// Index of the state in force at receiver time `t`.
    pub fn index_at(&self, t: Seconds, td: Seconds) -> Option<usize> {
        let supply_time = t.0 - td.0;
        let k = (supply_time - self.start.0) / self.period.0;
        if k < 0.0 {
            return None;
        }
        let idx = k.floor() as usize;
        (idx < self.states.len()).then_some(idx)
    }

    /// Total schedule duration.
    pub fn duration(&self) -> Seconds {
        Seconds(self.states.len() as f64 * self.period.0)
    }
}

/// Labels a stream of timestamped power samples with state indices.
///
/// Returns, per schedule state, the samples attributed to it (skipping a
/// guard interval of `guard` after each switch to let the rail settle —
/// mislabeling across edges is the classic failure the guard prevents).
pub fn label_samples(
    schedule: &BiasSchedule,
    samples: &[(Seconds, f64)],
    td: Seconds,
    guard: Seconds,
) -> Vec<Vec<f64>> {
    let mut out = vec![Vec::new(); schedule.states.len()];
    for &(t, p) in samples {
        if let Some(idx) = schedule.index_at(t, td) {
            // Position within the state's dwell window.
            let supply_time = t.0 - td.0;
            let into = supply_time - schedule.start.0 - idx as f64 * schedule.period.0;
            if into >= guard.0 {
                out[idx].push(p);
            }
        }
    }
    out
}

/// Estimates the clock offset `td` by maximizing step alignment: slides
/// a candidate offset over `[0, period)` and scores how well power
/// transitions in the samples line up with the commanded switch times.
///
/// `samples` must be uniformly spaced in time. Returns the offset in
/// `[0, period)` — sub-period alignment is all Eq. 13 needs, since the
/// state *index* ambiguity is fixed by the schedule start marker.
pub fn estimate_offset(
    schedule: &BiasSchedule,
    samples: &[(Seconds, f64)],
    candidates: usize,
) -> Seconds {
    assert!(candidates >= 2, "need candidate resolution");
    let period = schedule.period.0;
    let mut best = (0.0, f64::NEG_INFINITY);
    for c in 0..candidates {
        let td = period * c as f64 / candidates as f64;
        // Score: variance *between* state buckets minus variance *within*
        // buckets — a correct offset groups samples cleanly.
        let buckets = label_samples(schedule, samples, Seconds(td), Seconds(0.0));
        let mut means = Vec::new();
        let mut within = 0.0;
        let mut n_within = 0usize;
        for b in &buckets {
            if b.is_empty() {
                continue;
            }
            let m = rfmath::stats::mean(b);
            means.push(m);
            within += b.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
            n_within += b.len();
        }
        if means.len() < 2 || n_within == 0 {
            continue;
        }
        let between = rfmath::stats::variance(&means);
        let score = between - within / n_within as f64;
        if score > best.1 {
            best = (td, score);
        }
    }
    Seconds(best.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> BiasSchedule {
        BiasSchedule::linear(
            Seconds(0.0),
            Seconds(0.02),
            (Volts(0.0), Volts(0.0)),
            (Volts(1.0), Volts(2.0)),
            10,
        )
    }

    #[test]
    fn eq13_labels_states() {
        let s = schedule();
        // Sample mid-way through state 3 with zero offset.
        let (vx, vy) = s.state_at(Seconds(0.07), Seconds(0.0)).unwrap();
        assert_eq!(vx, Volts(3.0));
        assert_eq!(vy, Volts(6.0));
    }

    #[test]
    fn offset_shifts_attribution() {
        let s = schedule();
        // With td = 20 ms the same wall-clock sample maps one state back.
        let (vx, _) = s.state_at(Seconds(0.07), Seconds(0.02)).unwrap();
        assert_eq!(vx, Volts(2.0));
    }

    #[test]
    fn out_of_range_times_are_none() {
        let s = schedule();
        assert!(s.state_at(Seconds(-0.01), Seconds(0.0)).is_none());
        assert!(s.state_at(Seconds(0.21), Seconds(0.0)).is_none());
        assert_eq!(s.duration().0, 0.2);
    }

    /// Builds a synthetic sample stream: per-state power plateaus with a
    /// known receiver clock offset.
    fn synth_samples(td: f64, rate_hz: f64) -> Vec<(Seconds, f64)> {
        let s = schedule();
        let n = (s.duration().0 * rate_hz) as usize;
        (0..n)
            .map(|i| {
                let t_rx = i as f64 / rate_hz + td;
                // True state from the supply's perspective.
                let idx = ((t_rx - td) / 0.02).floor() as usize;
                let power = (idx % 10) as f64 * 3.0 + 10.0;
                (Seconds(t_rx), power)
            })
            .collect()
    }

    #[test]
    fn labeling_with_correct_offset_gives_clean_buckets() {
        let s = schedule();
        let samples = synth_samples(0.013, 1000.0);
        let buckets = label_samples(&s, &samples, Seconds(0.013), Seconds(0.002));
        for (idx, b) in buckets.iter().enumerate() {
            assert!(!b.is_empty(), "state {idx} got no samples");
            let expected = (idx % 10) as f64 * 3.0 + 10.0;
            for &p in b {
                assert_eq!(p, expected, "state {idx} contaminated");
            }
        }
    }

    #[test]
    fn estimated_offset_recovers_truth_mod_period() {
        let s = schedule();
        for true_td in [0.0, 0.004, 0.013, 0.019] {
            let samples = synth_samples(true_td, 2000.0);
            let est = estimate_offset(&s, &samples, 40).0;
            let err = (est - true_td).abs().min(0.02 - (est - true_td).abs());
            assert!(err < 0.002, "td = {true_td}: estimated {est}");
        }
    }

    #[test]
    fn guard_as_long_as_the_dwell_drops_everything() {
        // A guard that consumes the whole switching period leaves no
        // attributable samples — the degenerate configuration must come
        // back empty, not mislabeled.
        let s = schedule();
        let samples = synth_samples(0.0, 1000.0);
        let buckets = label_samples(&s, &samples, Seconds(0.0), Seconds(0.02));
        assert!(buckets.iter().all(|b| b.is_empty()));
        assert_eq!(buckets.len(), s.states.len());
    }

    #[test]
    fn samples_outside_the_schedule_are_unattributed() {
        let s = schedule();
        let samples = vec![
            (Seconds(-0.5), 10.0),
            (Seconds(0.01), 20.0),
            (Seconds(5.0), 30.0),
        ];
        let buckets = label_samples(&s, &samples, Seconds(0.0), Seconds(0.0));
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, 1, "only the in-schedule sample is attributed");
        assert_eq!(buckets[0], vec![20.0]);
    }

    #[test]
    fn empty_schedule_attributes_nothing() {
        let s = BiasSchedule {
            start: Seconds(0.0),
            period: Seconds(0.02),
            states: Vec::new(),
        };
        assert_eq!(s.duration().0, 0.0);
        assert!(s.state_at(Seconds(0.01), Seconds(0.0)).is_none());
        assert!(s.index_at(Seconds(0.01), Seconds(0.0)).is_none());
        let buckets = label_samples(&s, &[(Seconds(0.01), 5.0)], Seconds(0.0), Seconds(0.0));
        assert!(buckets.is_empty());
    }

    #[test]
    fn featureless_power_stream_estimates_a_safe_zero_offset() {
        // Constant power carries no step edges to align on: every
        // candidate scores identically (one bucket per state, zero
        // variance) and the estimator must fall back to offset 0 rather
        // than picking noise.
        let s = schedule();
        let samples: Vec<(Seconds, f64)> = (0..400)
            .map(|i| (Seconds(i as f64 / 2000.0), -40.0))
            .collect();
        let est = estimate_offset(&s, &samples, 20);
        assert_eq!(est.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "candidate resolution")]
    fn estimator_requires_candidate_resolution() {
        let s = schedule();
        let _ = estimate_offset(&s, &synth_samples(0.0, 1000.0), 1);
    }

    #[test]
    fn negative_clock_offset_maps_forward() {
        // A receiver that started *earlier* than the supply (td < 0)
        // maps a sample to a later state index.
        let s = schedule();
        let (vx, _) = s.state_at(Seconds(0.07), Seconds(-0.02)).unwrap();
        assert_eq!(vx, Volts(4.0));
    }

    #[test]
    fn guard_interval_drops_edge_samples() {
        let s = schedule();
        let samples = synth_samples(0.0, 1000.0);
        let no_guard = label_samples(&s, &samples, Seconds(0.0), Seconds(0.0));
        let guarded = label_samples(&s, &samples, Seconds(0.0), Seconds(0.005));
        let count = |v: &Vec<Vec<f64>>| v.iter().map(Vec::len).sum::<usize>();
        assert!(count(&guarded) < count(&no_guard));
    }
}
