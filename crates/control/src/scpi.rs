//! Minimal SCPI command parser for the programmable power supply.
//!
//! The paper drives its Tektronix 2230G over USB with a Python/VISA
//! script. Our PSU model speaks the same small command dialect so the
//! control plane exercises a realistic wire protocol (and so protocol
//! parsing — a networking concern — is tested code, not hand-waving):
//!
//! ```text
//! APPL CH1,12.5        set channel 1 to 12.5 V
//! APPL? CH2            query channel 2 setting
//! OUTP ON              enable outputs
//! OUTP OFF             disable outputs
//! MEAS:CURR? CH1       query channel current
//! *IDN?                identify
//! ```

use std::fmt;

/// A parsed SCPI command for the two-channel supply.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `APPL CHn,<volts>` — set a channel voltage.
    Apply {
        /// Channel number (1-based).
        channel: u8,
        /// Voltage setpoint.
        volts: f64,
    },
    /// `APPL? CHn` — query a channel setpoint.
    QueryApply {
        /// Channel number (1-based).
        channel: u8,
    },
    /// `OUTP ON` / `OUTP OFF` — master output enable.
    Output {
        /// Desired output state.
        on: bool,
    },
    /// `MEAS:CURR? CHn` — measure channel current.
    MeasureCurrent {
        /// Channel number (1-based).
        channel: u8,
    },
    /// `*IDN?` — identification query.
    Identify,
}

/// Parse failure, carrying a human-readable reason.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SCPI parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_channel(tok: &str) -> Result<u8, ParseError> {
    let t = tok.trim().to_ascii_uppercase();
    let digits = t
        .strip_prefix("CH")
        .ok_or_else(|| ParseError(format!("expected CHn, got {tok:?}")))?;
    let n: u8 = digits
        .parse()
        .map_err(|_| ParseError(format!("bad channel number {digits:?}")))?;
    if n == 0 || n > 3 {
        return Err(ParseError(format!("channel {n} out of range 1–3")));
    }
    Ok(n)
}

/// Parses one SCPI line.
pub fn parse(line: &str) -> Result<Command, ParseError> {
    let line = line.trim();
    if line.is_empty() {
        return Err(ParseError("empty command".into()));
    }
    let upper = line.to_ascii_uppercase();
    if upper == "*IDN?" {
        return Ok(Command::Identify);
    }
    if let Some(rest) = upper.strip_prefix("OUTP") {
        let arg = rest.trim();
        return match arg {
            "ON" | "1" => Ok(Command::Output { on: true }),
            "OFF" | "0" => Ok(Command::Output { on: false }),
            _ => Err(ParseError(format!("bad OUTP argument {arg:?}"))),
        };
    }
    if let Some(rest) = upper.strip_prefix("MEAS:CURR?") {
        return Ok(Command::MeasureCurrent {
            channel: parse_channel(rest)?,
        });
    }
    if let Some(rest) = upper.strip_prefix("APPL?") {
        return Ok(Command::QueryApply {
            channel: parse_channel(rest)?,
        });
    }
    if let Some(rest) = upper.strip_prefix("APPL") {
        let mut parts = rest.trim().splitn(2, ',');
        let ch = parts
            .next()
            .ok_or_else(|| ParseError("APPL needs CHn,<volts>".into()))?;
        let volts_tok = parts
            .next()
            .ok_or_else(|| ParseError("APPL needs a voltage".into()))?;
        let volts: f64 = volts_tok
            .trim()
            .parse()
            .map_err(|_| ParseError(format!("bad voltage {volts_tok:?}")))?;
        if !volts.is_finite() {
            return Err(ParseError("voltage must be finite".into()));
        }
        return Ok(Command::Apply {
            channel: parse_channel(ch)?,
            volts,
        });
    }
    Err(ParseError(format!("unknown command {line:?}")))
}

/// Formats a command back to wire form (round-trip support for logs).
pub fn format_command(cmd: &Command) -> String {
    match cmd {
        Command::Apply { channel, volts } => format!("APPL CH{channel},{volts}"),
        Command::QueryApply { channel } => format!("APPL? CH{channel}"),
        Command::Output { on } => format!("OUTP {}", if *on { "ON" } else { "OFF" }),
        Command::MeasureCurrent { channel } => format!("MEAS:CURR? CH{channel}"),
        Command::Identify => "*IDN?".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_apply() {
        assert_eq!(
            parse("APPL CH1,12.5").unwrap(),
            Command::Apply {
                channel: 1,
                volts: 12.5
            }
        );
        assert_eq!(
            parse("appl ch2, 0.0").unwrap(),
            Command::Apply {
                channel: 2,
                volts: 0.0
            }
        );
    }

    #[test]
    fn parses_queries_and_output() {
        assert_eq!(
            parse("APPL? CH2").unwrap(),
            Command::QueryApply { channel: 2 }
        );
        assert_eq!(parse("OUTP ON").unwrap(), Command::Output { on: true });
        assert_eq!(parse("outp off").unwrap(), Command::Output { on: false });
        assert_eq!(
            parse("MEAS:CURR? CH1").unwrap(),
            Command::MeasureCurrent { channel: 1 }
        );
        assert_eq!(parse("*IDN?").unwrap(), Command::Identify);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("APPL CH9,5").is_err());
        assert!(parse("APPL CH1").is_err());
        assert!(parse("APPL CH1,abc").is_err());
        assert!(parse("VOLT 5").is_err());
        assert!(parse("OUTP MAYBE").is_err());
        assert!(parse("APPL CH1,NaN").is_err());
    }

    #[test]
    fn round_trips_through_format() {
        for cmd in [
            Command::Apply {
                channel: 1,
                volts: 7.25,
            },
            Command::QueryApply { channel: 2 },
            Command::Output { on: true },
            Command::MeasureCurrent { channel: 2 },
            Command::Identify,
        ] {
            let wire = format_command(&cmd);
            assert_eq!(parse(&wire).unwrap(), cmd, "wire = {wire}");
        }
    }
}
