//! Biasing-voltage sweep strategies — the paper's Algorithm 1.
//!
//! A full 1 V-step scan of the (Vx, Vy) plane takes ~30 s at the
//! supply's 50 Hz switching budget, too slow for real-time use. The
//! paper's answer is a coarse-to-fine search: `N` iterations, each
//! sweeping `T` values per axis inside the window selected by the
//! previous iteration. The time cost per iteration is `0.02·T²` seconds
//! (both axes swept jointly), so the whole search costs `0.02·N·T²` —
//! with the paper's `N = 2, T = 5` that is one second instead of thirty.

use rfmath::telemetry::{RecorderHandle, TelemetryEvent};
use rfmath::units::{Seconds, Volts};

/// Parameters of Algorithm 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepConfig {
    /// Number of refinement iterations (paper: 2).
    pub iterations: usize,
    /// Voltage points per axis per iteration (paper: 5).
    pub steps_per_axis: usize,
    /// Overall voltage range swept in the first iteration.
    pub v_min: Volts,
    /// Upper end of the first-iteration range.
    pub v_max: Volts,
    /// Time budget per voltage switch (the supply's period).
    pub switch_period: Seconds,
}

impl SweepConfig {
    /// The paper's configuration: N = 2, T = 5 over 0–30 V at 50 Hz.
    pub fn paper_default() -> Self {
        Self {
            iterations: 2,
            steps_per_axis: 5,
            v_min: Volts(0.0),
            v_max: Volts(30.0),
            switch_period: Seconds(0.02),
        }
    }

    /// An exhaustive 1 V-step full scan (the slow baseline).
    pub fn full_scan() -> Self {
        Self {
            iterations: 1,
            steps_per_axis: 31,
            v_min: Volts(0.0),
            v_max: Volts(30.0),
            switch_period: Seconds(0.02),
        }
    }

    /// Predicted sweep duration: `period · N · T²`.
    pub fn predicted_duration(&self) -> Seconds {
        Seconds(
            self.switch_period.0
                * self.iterations as f64
                * (self.steps_per_axis * self.steps_per_axis) as f64,
        )
    }
}

/// One probe the sweep asks the system to make: set this bias, then
/// report the received power.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Probe {
    /// X-rail voltage to apply.
    pub vx: Volts,
    /// Y-rail voltage to apply.
    pub vy: Volts,
}

/// Outcome of a completed sweep.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The winning bias combination.
    pub best: Probe,
    /// Power observed at the winner (caller's units, higher = better).
    pub best_metric: f64,
    /// Total probes spent.
    pub probes: usize,
    /// Wall-clock cost at the configured switching period.
    pub duration: Seconds,
    /// Every probe and its metric, in visit order (for heat-mapping).
    pub history: Vec<(Probe, f64)>,
}

/// Outcome of a completed vector-objective sweep: the winning probe,
/// the scalar score it won on, and the full per-device metric vectors.
#[derive(Clone, Debug)]
pub struct MultiSweepOutcome {
    /// The winning bias combination.
    pub best: Probe,
    /// Scalar score of the winner (output of the scoring function).
    pub best_score: f64,
    /// Per-device metrics measured at the winner, in measurement order.
    pub best_metrics: Vec<f64>,
    /// Total probes spent.
    pub probes: usize,
    /// Wall-clock cost at the configured switching period.
    pub duration: Seconds,
    /// Every probe and its metric vector, in visit order.
    pub history: Vec<(Probe, Vec<f64>)>,
}

/// Runs Algorithm 1 against a *vector* metric: each probe measures one
/// value per device (or per objective component) and `score` folds the
/// vector into the scalar the refinement maximizes — `min` for max-min
/// fairness, a margin for access control, the identity on element 0 for
/// the classic single-link sweep ([`coarse_to_fine`] is exactly that
/// N = 1 case).
///
/// The refinement logic is byte-for-byte Algorithm 1: `N` iterations of
/// a `T×T` grid, each window centred on the previous winner.
pub fn coarse_to_fine_multi(
    config: &SweepConfig,
    mut measure: impl FnMut(Probe) -> Vec<f64>,
    score: impl Fn(&[f64]) -> f64,
) -> MultiSweepOutcome {
    assert!(config.iterations >= 1, "need at least one iteration");
    assert!(
        config.steps_per_axis >= 2,
        "need at least two steps per axis"
    );
    let mut lo_x = config.v_min;
    let mut hi_x = config.v_max;
    let mut lo_y = config.v_min;
    let mut hi_y = config.v_max;
    let mut best = Probe {
        vx: config.v_min,
        vy: config.v_min,
    };
    let mut best_score = f64::NEG_INFINITY;
    let mut best_metrics: Vec<f64> = Vec::new();
    let mut probes = 0usize;
    // Every iteration records exactly T² probes; reserve the whole run
    // up front so the history never reallocates mid-sweep.
    let mut history =
        Vec::with_capacity(config.iterations * config.steps_per_axis * config.steps_per_axis);

    for _iter in 0..config.iterations {
        let t = config.steps_per_axis;
        let grid = |lo: Volts, hi: Volts, i: usize| {
            Volts(lo.0 + (hi.0 - lo.0) * i as f64 / (t - 1) as f64)
        };
        let mut iter_best = best;
        let mut iter_score = f64::NEG_INFINITY;
        let mut iter_metrics: Vec<f64> = Vec::new();
        for ix in 0..t {
            for iy in 0..t {
                let probe = Probe {
                    vx: grid(lo_x, hi_x, ix),
                    vy: grid(lo_y, hi_y, iy),
                };
                let m = measure(probe);
                let s = score(&m);
                probes += 1;
                if s > iter_score {
                    iter_score = s;
                    iter_best = probe;
                    iter_metrics = m.clone();
                }
                history.push((probe, m));
            }
        }
        if iter_score > best_score {
            best_score = iter_score;
            best = iter_best;
            best_metrics = iter_metrics;
        }
        // Narrow the window to one coarse step around the winner
        // (the paper returns [v − Vs, v] per axis; we center for
        // symmetry, clamped to the configured range).
        let step_x = (hi_x.0 - lo_x.0) / (t - 1) as f64;
        let step_y = (hi_y.0 - lo_y.0) / (t - 1) as f64;
        lo_x = Volts((best.vx.0 - step_x).max(config.v_min.0));
        hi_x = Volts((best.vx.0 + step_x).min(config.v_max.0));
        lo_y = Volts((best.vy.0 - step_y).max(config.v_min.0));
        hi_y = Volts((best.vy.0 + step_y).min(config.v_max.0));
    }

    MultiSweepOutcome {
        best,
        best_score,
        best_metrics,
        probes,
        duration: Seconds(config.switch_period.0 * probes as f64),
        history,
    }
}

/// Parameters of a warm-start re-optimization: a refinement sweep seeded
/// from a known-good probe (the previous tick of a mobility simulation)
/// instead of the full supply range.
///
/// The warm path exists because re-running the full Algorithm 1 search
/// every tick burns `N·T²` probes of airtime when the environment moved
/// only slightly; a warm refinement re-checks the carried-over bias (one
/// probe) and sweeps a small window around it, falling back to the cold
/// search only when the local optimum has genuinely walked away
/// (detected by the caller through [`WarmConfig::regression_db`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarmConfig {
    /// Half-width of the refinement window per axis, centered on the
    /// warm-start probe (clamped to the sweep's supply range).
    pub radius: Volts,
    /// Voltage points per axis per warm iteration.
    pub steps_per_axis: usize,
    /// Warm refinement iterations.
    pub iterations: usize,
    /// Score drop relative to the previous outcome that the caller
    /// should treat as a failed warm start and widen to the cold search
    /// (dB for the power objectives this workspace optimizes).
    pub regression_db: f64,
}

impl WarmConfig {
    /// The default warm budget: one 3×3 refinement over ±one coarse
    /// step of the paper grid (30 V / (5 − 1) = 7.5 V) — 10 probes per
    /// tick instead of the cold 50. The regression guard is one
    /// distance-doubling (6 dB): a mobile device walking away loses
    /// 2–3 dB per tick that no amount of re-searching recovers, so
    /// smaller drops track warm, while a genuine upheaval (a blocker
    /// stepping in, a handoff) justifies the cold widening.
    pub fn paper_default() -> Self {
        Self {
            radius: Volts(7.5),
            steps_per_axis: 3,
            iterations: 1,
            regression_db: 6.0,
        }
    }

    /// Probes one warm re-optimization spends: the center re-check plus
    /// the refinement grids.
    pub fn probe_budget(&self) -> usize {
        1 + self.iterations * self.steps_per_axis * self.steps_per_axis
    }
}

/// Runs a warm-start refinement against a vector metric: re-measures
/// `center` first (so the outcome can never score below simply holding
/// the carried-over bias), then runs `warm.iterations` of a
/// `steps_per_axis`² grid inside ±`warm.radius` around it, narrowing
/// window-over-window exactly like [`coarse_to_fine_multi`]. All probes
/// are clamped to `config`'s supply range, and airtime is billed at
/// `config.switch_period` per probe.
pub fn warm_refine_multi(
    config: &SweepConfig,
    warm: &WarmConfig,
    center: Probe,
    mut measure: impl FnMut(Probe) -> Vec<f64>,
    score: impl Fn(&[f64]) -> f64,
) -> MultiSweepOutcome {
    assert!(warm.iterations >= 1, "need at least one warm iteration");
    assert!(warm.steps_per_axis >= 2, "need at least two steps per axis");
    assert!(warm.radius.0 > 0.0, "warm radius must be positive");
    let clamp = |v: f64| v.clamp(config.v_min.0, config.v_max.0);
    let center = Probe {
        vx: Volts(clamp(center.vx.0)),
        vy: Volts(clamp(center.vy.0)),
    };
    let t = warm.steps_per_axis;
    let mut history = Vec::with_capacity(1 + warm.iterations * t * t);

    // Probe 1: the carried-over bias itself.
    let m0 = measure(center);
    let mut best_score = score(&m0);
    let mut best = center;
    let mut best_metrics = m0.clone();
    let mut probes = 1usize;
    history.push((center, m0));

    let mut lo_x = clamp(center.vx.0 - warm.radius.0);
    let mut hi_x = clamp(center.vx.0 + warm.radius.0);
    let mut lo_y = clamp(center.vy.0 - warm.radius.0);
    let mut hi_y = clamp(center.vy.0 + warm.radius.0);
    for _iter in 0..warm.iterations {
        let grid = |lo: f64, hi: f64, i: usize| Volts(lo + (hi - lo) * i as f64 / (t - 1) as f64);
        for ix in 0..t {
            for iy in 0..t {
                let probe = Probe {
                    vx: grid(lo_x, hi_x, ix),
                    vy: grid(lo_y, hi_y, iy),
                };
                let m = measure(probe);
                let s = score(&m);
                probes += 1;
                if s > best_score {
                    best_score = s;
                    best = probe;
                    best_metrics = m.clone();
                }
                history.push((probe, m));
            }
        }
        // Narrow one grid step around the running winner, like the cold
        // sweep's refinement rounds.
        let step_x = (hi_x - lo_x) / (t - 1) as f64;
        let step_y = (hi_y - lo_y) / (t - 1) as f64;
        lo_x = clamp(best.vx.0 - step_x);
        hi_x = clamp(best.vx.0 + step_x);
        lo_y = clamp(best.vy.0 - step_y);
        hi_y = clamp(best.vy.0 + step_y);
    }

    MultiSweepOutcome {
        best,
        best_score,
        best_metrics,
        probes,
        duration: Seconds(config.switch_period.0 * probes as f64),
        history,
    }
}

/// [`coarse_to_fine_multi`] with telemetry: the whole sweep is timed as
/// a `sweep.cold_ns` span, its probes tick the `sweep.probes` counter
/// and land in the `sweep.probes_per_sweep` value histogram, and a
/// [`TelemetryEvent::SweepSpan`] tagged with `panel` records the
/// deterministic cost (probe count, not wall time) in the event log.
/// With a null recorder this is exactly [`coarse_to_fine_multi`].
pub fn coarse_to_fine_multi_traced(
    recorder: &RecorderHandle,
    panel: usize,
    config: &SweepConfig,
    measure: impl FnMut(Probe) -> Vec<f64>,
    score: impl Fn(&[f64]) -> f64,
) -> MultiSweepOutcome {
    let span = recorder.span("sweep.cold_ns");
    let outcome = coarse_to_fine_multi(config, measure, score);
    drop(span);
    if recorder.enabled() {
        recorder.add("sweep.probes", outcome.probes as u64);
        recorder.record_value("sweep.probes_per_sweep", outcome.probes as u64);
        recorder.emit(TelemetryEvent::SweepSpan {
            panel,
            kind: "cold",
            probes: outcome.probes,
        });
    }
    outcome
}

/// [`warm_refine_multi`] with telemetry — the warm-start counterpart of
/// [`coarse_to_fine_multi_traced`] (span `sweep.warm_ns`, event kind
/// `"warm"`).
pub fn warm_refine_multi_traced(
    recorder: &RecorderHandle,
    panel: usize,
    config: &SweepConfig,
    warm: &WarmConfig,
    center: Probe,
    measure: impl FnMut(Probe) -> Vec<f64>,
    score: impl Fn(&[f64]) -> f64,
) -> MultiSweepOutcome {
    let span = recorder.span("sweep.warm_ns");
    let outcome = warm_refine_multi(config, warm, center, measure, score);
    drop(span);
    if recorder.enabled() {
        recorder.add("sweep.probes", outcome.probes as u64);
        recorder.record_value("sweep.probes_per_sweep", outcome.probes as u64);
        recorder.emit(TelemetryEvent::SweepSpan {
            panel,
            kind: "warm",
            probes: outcome.probes,
        });
    }
    outcome
}

/// Drives a block-coordinate-descent loop to a fixed point: calls
/// `round` (one full pass over all coordinate blocks, returning the
/// pass's absolute score improvement) until the improvement drops to
/// `tolerance` or `max_rounds` passes have run. Returns the number of
/// rounds executed and whether the loop converged (hit the tolerance)
/// rather than the round cap.
///
/// The joint multi-surface optimizer uses this with one `round` =
/// one [`warm_refine_multi`] sweep per panel against the superposed
/// field; it is generic so any alternating-minimization caller can
/// reuse the cap/convergence bookkeeping.
pub fn descend_rounds(
    max_rounds: usize,
    tolerance: f64,
    mut round: impl FnMut() -> f64,
) -> (usize, bool) {
    assert!(max_rounds >= 1, "need at least one descent round");
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    for r in 1..=max_rounds {
        if round() <= tolerance {
            return (r, true);
        }
    }
    (max_rounds, false)
}

/// Runs Algorithm 1 against a scalar metric callback (higher is better).
///
/// The callback receives each probe and returns the measured metric —
/// in the real system that is the receiver's reported signal power under
/// the labeled voltage state (§3.3's synchronization makes the labeling
/// sound). This is [`coarse_to_fine_multi`] with a one-element metric
/// vector: the single link is the N = 1 fleet.
pub fn coarse_to_fine(config: &SweepConfig, mut measure: impl FnMut(Probe) -> f64) -> SweepOutcome {
    let outcome = coarse_to_fine_multi(config, |p| vec![measure(p)], |m| m[0]);
    SweepOutcome {
        best: outcome.best,
        best_metric: outcome.best_score,
        probes: outcome.probes,
        duration: outcome.duration,
        history: outcome
            .history
            .into_iter()
            .map(|(p, m)| (p, m[0]))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth unimodal surface peaking at (vx0, vy0).
    fn bump(vx0: f64, vy0: f64) -> impl FnMut(Probe) -> f64 {
        move |p: Probe| {
            let dx = p.vx.0 - vx0;
            let dy = p.vy.0 - vy0;
            -(dx * dx + dy * dy)
        }
    }

    #[test]
    fn paper_config_costs_one_second() {
        let cfg = SweepConfig::paper_default();
        // 0.02 × 2 × 25 = 1.0 s — the paper's speed-up over ~30 s.
        assert!((cfg.predicted_duration().0 - 1.0).abs() < 1e-12);
        let full = SweepConfig::full_scan();
        assert!(full.predicted_duration().0 > 19.0);
    }

    #[test]
    fn finds_interior_peak() {
        let outcome = coarse_to_fine(&SweepConfig::paper_default(), bump(17.3, 8.2));
        assert!(
            (outcome.best.vx.0 - 17.3).abs() < 2.0,
            "vx = {:?}",
            outcome.best.vx
        );
        assert!(
            (outcome.best.vy.0 - 8.2).abs() < 2.0,
            "vy = {:?}",
            outcome.best.vy
        );
        assert_eq!(outcome.probes, 50);
    }

    #[test]
    fn refinement_beats_single_pass() {
        let single = coarse_to_fine(
            &SweepConfig {
                iterations: 1,
                ..SweepConfig::paper_default()
            },
            bump(17.3, 8.2),
        );
        let double = coarse_to_fine(&SweepConfig::paper_default(), bump(17.3, 8.2));
        let err =
            |o: &SweepOutcome| ((o.best.vx.0 - 17.3).powi(2) + (o.best.vy.0 - 8.2).powi(2)).sqrt();
        assert!(err(&double) <= err(&single) + 1e-9);
    }

    #[test]
    fn finds_edge_peak() {
        let outcome = coarse_to_fine(&SweepConfig::paper_default(), bump(30.0, 0.0));
        assert!((outcome.best.vx.0 - 30.0).abs() < 2.0);
        assert!(outcome.best.vy.0 < 2.0);
    }

    #[test]
    fn full_scan_is_exhaustive() {
        let outcome = coarse_to_fine(&SweepConfig::full_scan(), bump(11.0, 23.0));
        assert_eq!(outcome.probes, 31 * 31);
        assert!((outcome.best.vx.0 - 11.0).abs() < 0.51);
        assert!((outcome.best.vy.0 - 23.0).abs() < 0.51);
    }

    #[test]
    fn history_records_every_probe() {
        let outcome = coarse_to_fine(&SweepConfig::paper_default(), bump(5.0, 5.0));
        assert_eq!(outcome.history.len(), outcome.probes);
        // The recorded best matches the history maximum.
        let hist_best = outcome
            .history
            .iter()
            .map(|(_, m)| *m)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(hist_best, outcome.best_metric);
    }

    #[test]
    fn duration_scales_with_probes() {
        let outcome = coarse_to_fine(&SweepConfig::paper_default(), bump(5.0, 5.0));
        assert!((outcome.duration.0 - 0.02 * outcome.probes as f64).abs() < 1e-12);
    }

    #[test]
    fn multi_with_identity_score_matches_scalar_sweep() {
        // The scalar sweep IS the N = 1 vector sweep: same winner, same
        // score, same visit order.
        let scalar = coarse_to_fine(&SweepConfig::paper_default(), bump(17.3, 8.2));
        let multi = coarse_to_fine_multi(
            &SweepConfig::paper_default(),
            {
                let mut b = bump(17.3, 8.2);
                move |p| vec![b(p)]
            },
            |m| m[0],
        );
        assert_eq!(scalar.best, multi.best);
        assert_eq!(scalar.best_metric, multi.best_score);
        assert_eq!(scalar.probes, multi.probes);
        assert_eq!(multi.best_metrics.len(), 1);
        for ((pa, ma), (pb, mb)) in scalar.history.iter().zip(&multi.history) {
            assert_eq!(pa, pb);
            assert_eq!(*ma, mb[0]);
        }
    }

    #[test]
    fn max_min_score_finds_the_compromise() {
        // Two bumps at different spots: maximizing the min lands between
        // them, not on either peak.
        let outcome = coarse_to_fine_multi(
            &SweepConfig::paper_default(),
            |p: Probe| {
                let d1 = (p.vx.0 - 10.0).powi(2) + (p.vy.0 - 10.0).powi(2);
                let d2 = (p.vx.0 - 20.0).powi(2) + (p.vy.0 - 20.0).powi(2);
                vec![-d1, -d2]
            },
            |m| m.iter().copied().fold(f64::INFINITY, f64::min),
        );
        assert_eq!(outcome.best_metrics.len(), 2);
        // The compromise equalizes the two objectives.
        assert!(
            (outcome.best_metrics[0] - outcome.best_metrics[1]).abs() < 30.0,
            "metrics {:?}",
            outcome.best_metrics
        );
        assert!((outcome.best.vx.0 - 15.0).abs() < 3.0, "{:?}", outcome.best);
        // And the winner's score is the max over the history's mins.
        let hist_best = outcome
            .history
            .iter()
            .map(|(_, m)| m.iter().copied().fold(f64::INFINITY, f64::min))
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(hist_best, outcome.best_score);
    }

    #[test]
    fn warm_refine_spends_its_probe_budget() {
        let warm = WarmConfig::paper_default();
        assert_eq!(warm.probe_budget(), 10);
        let outcome = warm_refine_multi(
            &SweepConfig::paper_default(),
            &warm,
            Probe {
                vx: Volts(15.0),
                vy: Volts(15.0),
            },
            |p| {
                let mut b = bump(17.3, 8.2);
                vec![b(p)]
            },
            |m| m[0],
        );
        assert_eq!(outcome.probes, warm.probe_budget());
        assert_eq!(outcome.history.len(), outcome.probes);
        assert!((outcome.duration.0 - 0.02 * outcome.probes as f64).abs() < 1e-12);
    }

    #[test]
    fn warm_refine_never_scores_below_the_center() {
        // The carried-over bias is probed first, so even a hostile
        // surface cannot make the warm outcome worse than holding it.
        let center = Probe {
            vx: Volts(17.0),
            vy: Volts(8.0),
        };
        let mut b = bump(17.3, 8.2);
        let center_score = b(center);
        let outcome = warm_refine_multi(
            &SweepConfig::paper_default(),
            &WarmConfig::paper_default(),
            center,
            |p| {
                let mut b = bump(17.3, 8.2);
                vec![b(p)]
            },
            |m| m[0],
        );
        assert!(outcome.best_score >= center_score);
        assert_eq!(outcome.history[0].0, center);
    }

    #[test]
    fn warm_refine_tracks_a_drifted_peak() {
        // The peak moved a few volts since the previous tick: the warm
        // window must catch up without a full-range rescan.
        let outcome = warm_refine_multi(
            &SweepConfig::paper_default(),
            &WarmConfig {
                steps_per_axis: 5,
                iterations: 2,
                ..WarmConfig::paper_default()
            },
            Probe {
                vx: Volts(14.0),
                vy: Volts(10.0),
            },
            |p| {
                let mut b = bump(18.0, 7.0);
                vec![b(p)]
            },
            |m| m[0],
        );
        assert!(
            (outcome.best.vx.0 - 18.0).abs() < 2.0,
            "vx = {:?}",
            outcome.best.vx
        );
        assert!(
            (outcome.best.vy.0 - 7.0).abs() < 2.0,
            "vy = {:?}",
            outcome.best.vy
        );
    }

    #[test]
    fn warm_refine_clamps_to_the_supply_range() {
        // A center on the rail edge must keep every probe inside range.
        let outcome = warm_refine_multi(
            &SweepConfig::paper_default(),
            &WarmConfig::paper_default(),
            Probe {
                vx: Volts(30.0),
                vy: Volts(0.0),
            },
            |p| vec![-(p.vx.0 - 29.0).abs() - p.vy.0],
            |m| m[0],
        );
        for (p, _) in &outcome.history {
            assert!((0.0..=30.0).contains(&p.vx.0), "vx = {:?}", p.vx);
            assert!((0.0..=30.0).contains(&p.vy.0), "vy = {:?}", p.vy);
        }
    }

    #[test]
    fn noisy_metric_still_lands_near_peak() {
        // Deterministic pseudo-noise on top of the bump: the sweep should
        // still land in the right neighbourhood.
        let mut k = 0u64;
        let outcome = coarse_to_fine(&SweepConfig::paper_default(), |p| {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((k >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 3.0;
            let dx = p.vx.0 - 20.0;
            let dy = p.vy.0 - 12.0;
            -(dx * dx + dy * dy) * 0.5 + noise
        });
        assert!((outcome.best.vx.0 - 20.0).abs() < 5.0);
        assert!((outcome.best.vy.0 - 12.0).abs() < 5.0);
    }

    #[test]
    fn traced_sweeps_match_untraced_and_record_the_cost() {
        use rfmath::telemetry::{RecorderHandle, RingRecorder, TelemetryEvent};
        use std::sync::Arc;

        let cfg = SweepConfig::paper_default();
        let plain = coarse_to_fine_multi(
            &cfg,
            {
                let mut b = bump(17.3, 8.2);
                move |p| vec![b(p)]
            },
            |m| m[0],
        );
        let ring = Arc::new(RingRecorder::new(64));
        let h = RecorderHandle::new(ring.clone());
        let traced = coarse_to_fine_multi_traced(
            &h,
            3,
            &cfg,
            {
                let mut b = bump(17.3, 8.2);
                move |p| vec![b(p)]
            },
            |m| m[0],
        );
        // The wrapper must be observation-only: identical outcome.
        assert_eq!(plain.best, traced.best);
        assert_eq!(plain.best_score, traced.best_score);
        assert_eq!(plain.probes, traced.probes);
        assert_eq!(ring.counter("sweep.probes"), plain.probes as u64);
        let events = ring.events();
        assert!(matches!(
            events.last(),
            Some((
                _,
                _,
                TelemetryEvent::SweepSpan {
                    panel: 3,
                    kind: "cold",
                    ..
                }
            ))
        ));
        // Null recorder: no panic, no events, same outcome again.
        let null = coarse_to_fine_multi_traced(
            &RecorderHandle::null(),
            0,
            &cfg,
            {
                let mut b = bump(17.3, 8.2);
                move |p| vec![b(p)]
            },
            |m| m[0],
        );
        assert_eq!(null.best, plain.best);
    }

    #[test]
    fn descend_rounds_stops_at_the_tolerance() {
        // Geometric improvement 8, 4, 2, 1, ... with tolerance 3: rounds
        // 1 and 2 improve above tolerance, round 3 lands at 2 ≤ 3.
        let mut gain = 16.0;
        let (rounds, converged) = descend_rounds(10, 3.0, || {
            gain /= 2.0;
            gain
        });
        assert_eq!(rounds, 3);
        assert!(converged);
    }

    #[test]
    fn descend_rounds_hits_the_cap_without_convergence() {
        let (rounds, converged) = descend_rounds(4, 0.0, || 1.0);
        assert_eq!(rounds, 4);
        assert!(!converged);
    }

    #[test]
    fn descend_rounds_converges_immediately_on_a_flat_round() {
        let (rounds, converged) = descend_rounds(5, 0.05, || 0.0);
        assert_eq!(rounds, 1);
        assert!(converged);
    }
}
