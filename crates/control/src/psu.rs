//! Programmable DC power supply model (Tektronix 2230G class, §3.3/§4).
//!
//! Two 0–30 V channels drive the metasurface's X and Y bias rails. The
//! properties the control plane depends on — and that we therefore model
//! — are the **bounded switching rate** (the paper drives it at up to
//! 50 Hz, making a 1 V-step full scan take ~30 s), the settling delay
//! after each step, and the SCPI command interface.

use std::fmt;

use rfmath::units::{Amperes, Seconds, Volts};

use crate::scpi::{self, Command};

/// Reply to an SCPI query.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// No payload (set commands).
    Ack,
    /// A text payload (identification).
    Text(String),
    /// A numeric payload (voltage/current queries).
    Number(f64),
    /// Command rejected.
    Error(String),
}

/// Typed failure modes of the supply's control surface. Every variant's
/// `Display` reproduces the legacy string (the one `Reply::Error` used
/// to carry verbatim), so substring matching on error text keeps
/// working while callers gain a matchable type.
#[derive(Clone, Debug, PartialEq)]
pub enum PsuError {
    /// A setpoint change arrived inside the instrument's switching
    /// period and was rejected.
    TooFast {
        /// Time elapsed since the last accepted switch.
        since: Seconds,
        /// The instrument's minimum switching period.
        period: Seconds,
    },
    /// The SCPI line did not parse (malformed command, bad channel…).
    Parse(String),
    /// An injected transport fault: the instrument never answered
    /// within the wait budget. The simulated instrument itself never
    /// times out — this variant exists for fault-injection harnesses
    /// that model a flaky serial link.
    Timeout {
        /// How long the caller waited before giving up.
        after: Seconds,
    },
}

impl fmt::Display for PsuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsuError::TooFast { since, period } => write!(
                f,
                "switching too fast: {:.1} ms since last step, period is {:.1} ms",
                since.0 * 1e3,
                period.0 * 1e3
            ),
            PsuError::Parse(msg) => write!(f, "{msg}"),
            PsuError::Timeout { after } => {
                write!(
                    f,
                    "no reply from the instrument after {:.1} ms",
                    after.0 * 1e3
                )
            }
        }
    }
}

impl std::error::Error for PsuError {}

/// The supply's programmable state.
#[derive(Clone, Debug)]
pub struct PowerSupply {
    /// Channel setpoints (two bias rails; channel 3 unused but present
    /// on the real instrument).
    setpoints: [Volts; 3],
    /// Master output enable.
    output_on: bool,
    /// Maximum voltage per channel.
    pub v_max: Volts,
    /// Minimum interval between setpoint changes (switching period).
    pub switch_period: Seconds,
    /// Settling time after a step before the output is within spec.
    pub settling: Seconds,
    /// Load leakage current drawn from each rail (the metasurface's
    /// 15 nA).
    pub load_leakage: Amperes,
    /// Simulation clock of the most recent accepted switch.
    last_switch_at: Seconds,
    /// Count of accepted switching operations (for timing audits).
    pub switch_count: u64,
}

impl PowerSupply {
    /// A Tektronix 2230G-30-1 class instrument: 2×30 V channels, 50 Hz
    /// effective switching, 5 ms settling.
    pub fn tektronix_2230g() -> Self {
        Self {
            setpoints: [Volts(0.0); 3],
            output_on: false,
            v_max: Volts(30.0),
            switch_period: Seconds(0.02),
            settling: Seconds(0.005),
            load_leakage: Amperes(15e-9),
            last_switch_at: Seconds(f64::NEG_INFINITY),
            switch_count: 0,
        }
    }

    /// Current channel setpoint (1-based channel index).
    pub fn setpoint(&self, channel: u8) -> Volts {
        self.setpoints[(channel as usize - 1).min(2)]
    }

    /// True when outputs are enabled.
    pub fn output_enabled(&self) -> bool {
        self.output_on
    }

    /// The actual rail voltage at simulation time `now`: zero when
    /// disabled, the setpoint once settled, and a first-order ramp while
    /// settling.
    pub fn rail_voltage(&self, channel: u8, now: Seconds) -> Volts {
        if !self.output_on {
            return Volts(0.0);
        }
        let target = self.setpoint(channel);
        let since = now.0 - self.last_switch_at.0;
        if since >= self.settling.0 {
            target
        } else {
            // Exponential settling with τ = settling/4.
            let tau = self.settling.0 / 4.0;
            let frac = 1.0 - (-since / tau).exp();
            Volts(target.0 * frac.clamp(0.0, 1.0))
        }
    }

    /// Executes one SCPI line at simulation time `now`.
    ///
    /// Setpoint changes are rejected (with an error reply) when they
    /// arrive faster than the instrument's switching period — the
    /// control plane must respect the 50 Hz budget, as the paper's
    /// timing analysis assumes.
    pub fn execute(&mut self, line: &str, now: Seconds) -> Reply {
        let cmd = match scpi::parse(line) {
            Ok(c) => c,
            Err(e) => return Reply::Error(PsuError::Parse(e.to_string()).to_string()),
        };
        match cmd {
            Command::Identify => Reply::Text("TEKTRONIX,2230G-30-1,SIM,FV:1.0".to_string()),
            Command::Output { on } => {
                self.output_on = on;
                Reply::Ack
            }
            Command::QueryApply { channel } => Reply::Number(self.setpoint(channel).0),
            Command::MeasureCurrent { channel } => {
                let _ = channel;
                if self.output_on {
                    Reply::Number(self.load_leakage.0)
                } else {
                    Reply::Number(0.0)
                }
            }
            Command::Apply { channel, volts } => {
                if now.0 - self.last_switch_at.0 < self.switch_period.0 - 1e-12 {
                    return Reply::Error(
                        PsuError::TooFast {
                            since: Seconds(now.0 - self.last_switch_at.0),
                            period: self.switch_period,
                        }
                        .to_string(),
                    );
                }
                let v = Volts(volts).clamp(Volts(0.0), self.v_max);
                self.setpoints[(channel as usize - 1).min(2)] = v;
                self.last_switch_at = now;
                self.switch_count += 1;
                Reply::Ack
            }
        }
    }

    /// Convenience: set both bias rails (channels 1 = X, 2 = Y) as one
    /// logical switch operation at time `now`. Returns a typed
    /// [`PsuError`] when the rate limit rejects the change (its
    /// `Display` carries the legacy instrument message).
    pub fn set_bias(&mut self, vx: Volts, vy: Volts, now: Seconds) -> Result<(), PsuError> {
        // The real script programs both channels back-to-back within one
        // switching slot; model it as a single rate-limited operation.
        if now.0 - self.last_switch_at.0 < self.switch_period.0 - 1e-12 {
            return Err(PsuError::TooFast {
                since: Seconds(now.0 - self.last_switch_at.0),
                period: self.switch_period,
            });
        }
        self.setpoints[0] = vx.clamp(Volts(0.0), self.v_max);
        self.setpoints[1] = vy.clamp(Volts(0.0), self.v_max);
        self.last_switch_at = now;
        self.switch_count += 1;
        Ok(())
    }

    /// Earliest simulation time at which another switch is accepted.
    pub fn next_switch_time(&self) -> Seconds {
        Seconds(self.last_switch_at.0 + self.switch_period.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identification() {
        let mut psu = PowerSupply::tektronix_2230g();
        match psu.execute("*IDN?", Seconds(0.0)) {
            Reply::Text(t) => assert!(t.contains("2230G")),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn apply_sets_and_queries() {
        let mut psu = PowerSupply::tektronix_2230g();
        assert_eq!(psu.execute("OUTP ON", Seconds(0.0)), Reply::Ack);
        assert_eq!(psu.execute("APPL CH1,12.5", Seconds(0.1)), Reply::Ack);
        assert_eq!(psu.execute("APPL? CH1", Seconds(0.2)), Reply::Number(12.5));
    }

    #[test]
    fn rate_limit_enforced() {
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        assert_eq!(psu.execute("APPL CH1,5", Seconds(0.10)), Reply::Ack);
        // 10 ms later: rejected (period is 20 ms).
        match psu.execute("APPL CH1,6", Seconds(0.11)) {
            Reply::Error(e) => assert!(e.contains("too fast")),
            other => panic!("expected rate-limit error, got {other:?}"),
        }
        // At the period boundary: accepted.
        assert_eq!(psu.execute("APPL CH1,6", Seconds(0.12)), Reply::Ack);
        assert_eq!(psu.switch_count, 2);
    }

    #[test]
    fn voltage_clamped_to_rail() {
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        psu.execute("APPL CH2,99", Seconds(0.1));
        assert_eq!(psu.setpoint(2), Volts(30.0));
    }

    #[test]
    fn rail_is_zero_when_output_off() {
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("APPL CH1,10", Seconds(0.0));
        assert_eq!(psu.rail_voltage(1, Seconds(1.0)), Volts(0.0));
    }

    #[test]
    fn rail_settles_exponentially() {
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        psu.set_bias(Volts(10.0), Volts(0.0), Seconds(1.0)).unwrap();
        let early = psu.rail_voltage(1, Seconds(1.0005)).0;
        let later = psu.rail_voltage(1, Seconds(1.003)).0;
        let settled = psu.rail_voltage(1, Seconds(1.01)).0;
        assert!(early < later && later < settled + 1e-9);
        assert_eq!(settled, 10.0);
    }

    #[test]
    fn measured_current_is_leakage() {
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        match psu.execute("MEAS:CURR? CH1", Seconds(0.1)) {
            Reply::Number(i) => assert!((i - 15e-9).abs() < 1e-15),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_bias_convenience_respects_rate() {
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        assert!(psu.set_bias(Volts(5.0), Volts(7.0), Seconds(0.1)).is_ok());
        assert!(psu
            .set_bias(Volts(6.0), Volts(7.0), Seconds(0.105))
            .is_err());
        assert!((psu.next_switch_time().0 - 0.12).abs() < 1e-12);
    }

    #[test]
    fn typed_errors_display_the_legacy_strings() {
        // The non-breaking contract of the PsuError migration: every
        // variant's Display reproduces the strings Reply::Error used to
        // carry, so substring matching ("too fast", SCPI parse text)
        // keeps working across the API change.
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        psu.set_bias(Volts(5.0), Volts(7.0), Seconds(0.1)).unwrap();
        let err = psu
            .set_bias(Volts(6.0), Volts(7.0), Seconds(0.105))
            .unwrap_err();
        assert!(matches!(err, PsuError::TooFast { .. }));
        assert!(err.to_string().contains("too fast"), "{err}");
        assert!(err.to_string().contains("5.0 ms since last step"), "{err}");
        // The SCPI Apply path and set_bias agree on the message shape.
        match psu.execute("APPL CH1,6", Seconds(0.106)) {
            Reply::Error(e) => assert!(e.contains("too fast") && e.contains("period"), "{e}"),
            other => panic!("expected rate-limit error, got {other:?}"),
        }
        let parse = PsuError::Parse("channel out of range".to_string());
        assert_eq!(parse.to_string(), "channel out of range");
        let timeout = PsuError::Timeout {
            after: Seconds(0.25),
        };
        assert!(timeout.to_string().contains("250.0 ms"), "{timeout}");
    }

    #[test]
    fn malformed_scpi_lines_reply_errors_without_state_changes() {
        // Every malformed line must come back as Reply::Error and leave
        // the instrument untouched — no setpoint change, no switch
        // consumed, no output toggle.
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        psu.execute("APPL CH1,5", Seconds(0.1));
        for (i, line) in [
            "",
            "   ",
            "VOLT 5",
            "APPL",
            "APPL CH1",
            "APPL CH1,abc",
            "APPL CH1,NaN",
            "APPL CH1,inf",
            "APPL X2,5",
            "OUTP MAYBE",
            "MEAS:CURR? 1",
            "*IDN",
        ]
        .iter()
        .enumerate()
        {
            match psu.execute(line, Seconds(1.0 + i as f64)) {
                Reply::Error(e) => assert!(!e.is_empty(), "{line:?} error must explain itself"),
                other => panic!("{line:?} must be rejected, got {other:?}"),
            }
        }
        assert_eq!(psu.setpoint(1), Volts(5.0), "setpoint survived the garbage");
        assert!(psu.output_enabled());
        assert_eq!(psu.switch_count, 1, "no malformed line consumed a switch");
    }

    #[test]
    fn out_of_range_channels_are_rejected() {
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        for line in ["APPL CH0,5", "APPL CH4,5", "APPL? CH9", "MEAS:CURR? CH0"] {
            match psu.execute(line, Seconds(0.5)) {
                Reply::Error(e) => {
                    assert!(
                        e.contains("out of range") || e.contains("channel"),
                        "{line:?}: {e}"
                    );
                }
                other => panic!("{line:?} must be rejected, got {other:?}"),
            }
        }
        // Channel 3 exists on the instrument (unused by the surface).
        assert_eq!(psu.execute("APPL CH3,7", Seconds(1.0)), Reply::Ack);
        assert_eq!(psu.setpoint(3), Volts(7.0));
    }

    #[test]
    fn bias_set_while_output_disabled_stores_but_does_not_drive() {
        // The real instrument accepts setpoints with outputs off; the
        // rails stay dark until OUTP ON, then drive the stored value.
        // The control plane depends on this ordering (program first,
        // enable second), so pin it.
        let mut psu = PowerSupply::tektronix_2230g();
        assert!(!psu.output_enabled());
        assert_eq!(psu.execute("APPL CH1,12.5", Seconds(0.0)), Reply::Ack);
        assert!(psu.set_bias(Volts(9.0), Volts(4.0), Seconds(0.1)).is_ok());
        assert_eq!(psu.setpoint(1), Volts(9.0), "setpoint stored while off");
        assert_eq!(psu.setpoint(2), Volts(4.0));
        assert_eq!(psu.rail_voltage(1, Seconds(1.0)), Volts(0.0));
        assert_eq!(psu.rail_voltage(2, Seconds(1.0)), Volts(0.0));
        // Disabled outputs also meter no current.
        assert_eq!(
            psu.execute("MEAS:CURR? CH1", Seconds(0.2)),
            Reply::Number(0.0)
        );
        // Enable: the stored setpoints drive the rails.
        assert_eq!(psu.execute("OUTP ON", Seconds(0.3)), Reply::Ack);
        assert_eq!(psu.rail_voltage(1, Seconds(1.0)), Volts(9.0));
        assert_eq!(psu.rail_voltage(2, Seconds(1.0)), Volts(4.0));
    }

    #[test]
    fn full_scan_takes_about_thirty_seconds() {
        // The paper's motivating number: a 1 V-step full 2-D sweep at
        // 50 Hz takes ~30 s. 31 × 31 = 961 combinations × 20 ms ≈ 19 s of
        // pure switching; with the per-sample dwell (~10 ms) it crosses
        // 30 s. Here we verify the switching-time floor.
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        let mut t = Seconds(0.1);
        let mut combos = 0;
        for vx in 0..=30 {
            for vy in 0..=30 {
                psu.set_bias(Volts(vx as f64), Volts(vy as f64), t).unwrap();
                t = psu.next_switch_time();
                combos += 1;
            }
        }
        assert_eq!(combos, 961);
        assert!(t.0 > 19.0, "switching floor = {:.1} s", t.0);
    }
}
