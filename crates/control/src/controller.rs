//! The centralized controller (paper §3.1/§3.3).
//!
//! Consumes receiver power reports, drives the PSU through Algorithm 1,
//! and converges on the bias state that maximizes link power. Modelled
//! as an explicit state machine so the end-to-end system can step it on
//! a simulation clock, inject lost reports, and audit its timing against
//! the supply's 50 Hz switching budget.

use rfmath::units::{Seconds, Volts};

use crate::psu::PowerSupply;
use crate::sweep::{Probe, SweepConfig};

/// Controller lifecycle states.
#[derive(Clone, Debug, PartialEq)]
pub enum Phase {
    /// Waiting to be told to optimize.
    Idle,
    /// Mid-sweep: probing combination `next` of the current plan.
    Sweeping {
        /// Index of the next probe in the plan.
        next: usize,
        /// Refinement iteration (0-based).
        iteration: usize,
    },
    /// Sweep finished; the best state is applied and held.
    Converged,
}

/// A power report from the receiver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerReport {
    /// Receiver timestamp.
    pub at: Seconds,
    /// Measured power, dBm.
    pub power_dbm: f64,
}

/// Events the controller emits for logging/diagnosis.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A sweep started with this many planned probes.
    SweepStarted(usize),
    /// A probe's bias state was applied.
    Applied(Probe),
    /// A probe was scored from a report.
    Scored(Probe, f64),
    /// A refinement window was selected.
    Refined {
        /// Iteration that just finished.
        iteration: usize,
        /// Winning probe of the iteration.
        winner: Probe,
    },
    /// The controller converged on its final state.
    Converged(Probe, f64),
    /// A probe timed out waiting for a report and was retried.
    ReportTimeout(Probe),
}

/// The centralized controller.
#[derive(Clone, Debug)]
pub struct Controller {
    /// Sweep strategy parameters.
    pub config: SweepConfig,
    /// How long to wait for a report before retrying a probe.
    pub report_timeout: Seconds,
    phase: Phase,
    plan: Vec<Probe>,
    scores: Vec<Option<f64>>,
    window: ((Volts, Volts), (Volts, Volts)),
    best: Option<(Probe, f64)>,
    applied_at: Option<Seconds>,
    events: Vec<Event>,
}

impl Controller {
    /// Creates a controller with the paper's sweep defaults.
    pub fn new(config: SweepConfig) -> Self {
        let window = ((config.v_min, config.v_max), (config.v_min, config.v_max));
        Self {
            config,
            report_timeout: Seconds(0.1),
            phase: Phase::Idle,
            plan: Vec::new(),
            scores: Vec::new(),
            window,
            best: None,
            applied_at: None,
            events: Vec::new(),
        }
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> &Phase {
        &self.phase
    }

    /// The best (probe, power) found so far.
    pub fn best(&self) -> Option<(Probe, f64)> {
        self.best
    }

    /// Emitted event log.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Begins an optimization: plans the first iteration's grid.
    pub fn start(&mut self) {
        self.window = (
            (self.config.v_min, self.config.v_max),
            (self.config.v_min, self.config.v_max),
        );
        self.best = None;
        self.plan_iteration(0);
        self.events.push(Event::SweepStarted(
            self.plan.len() * self.config.iterations,
        ));
        self.phase = Phase::Sweeping {
            next: 0,
            iteration: 0,
        };
    }

    fn plan_iteration(&mut self, _iteration: usize) {
        let t = self.config.steps_per_axis;
        let ((lx, hx), (ly, hy)) = self.window;
        let grid = |lo: Volts, hi: Volts, i: usize| {
            Volts(lo.0 + (hi.0 - lo.0) * i as f64 / (t - 1) as f64)
        };
        self.plan.clear();
        self.scores.clear();
        for ix in 0..t {
            for iy in 0..t {
                self.plan.push(Probe {
                    vx: grid(lx, hx, ix),
                    vy: grid(ly, hy, iy),
                });
            }
        }
        self.scores.resize(self.plan.len(), None);
    }

    /// Advances the controller at simulation time `now` with an optional
    /// receiver report. Applies bias states to the PSU as the switching
    /// budget allows. Call repeatedly from the simulation loop.
    pub fn step(&mut self, psu: &mut PowerSupply, now: Seconds, report: Option<PowerReport>) {
        let Phase::Sweeping { next, iteration } = self.phase.clone() else {
            return;
        };

        // Score the pending probe from a report, if one arrived after the
        // bias was applied (plus settling).
        if let (Some(applied_at), Some(rep)) = (self.applied_at, report) {
            if rep.at.0 >= applied_at.0 + psu.settling.0 && next > 0 {
                let probe_idx = next - 1;
                if self.scores[probe_idx].is_none() {
                    self.scores[probe_idx] = Some(rep.power_dbm);
                    self.events
                        .push(Event::Scored(self.plan[probe_idx], rep.power_dbm));
                    if self.best.map(|(_, b)| rep.power_dbm > b).unwrap_or(true) {
                        self.best = Some((self.plan[probe_idx], rep.power_dbm));
                    }
                }
            }
        }

        // Retry a probe whose report never came.
        if let Some(applied_at) = self.applied_at {
            if next > 0
                && self.scores[next - 1].is_none()
                && now.0 - applied_at.0 > self.report_timeout.0
            {
                self.events.push(Event::ReportTimeout(self.plan[next - 1]));
                // Re-apply the same probe (by rewinding `next`).
                self.phase = Phase::Sweeping {
                    next: next - 1,
                    iteration,
                };
                self.applied_at = None;
                return;
            }
        }

        // Move on only when the previous probe has been scored.
        if next > 0 && self.scores[next - 1].is_none() {
            return;
        }

        if next < self.plan.len() {
            // Apply the next probe when the PSU allows.
            if now.0 >= psu.next_switch_time().0 {
                let probe = self.plan[next];
                if psu.set_bias(probe.vx, probe.vy, now).is_ok() {
                    self.applied_at = Some(now);
                    self.events.push(Event::Applied(probe));
                    self.phase = Phase::Sweeping {
                        next: next + 1,
                        iteration,
                    };
                }
            }
            return;
        }

        // Iteration complete: refine or converge.
        let (winner_idx, _) = self
            .scores
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|v| (i, v)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("every probe scored");
        let winner = self.plan[winner_idx];
        self.events.push(Event::Refined { iteration, winner });

        if iteration + 1 < self.config.iterations {
            let t = self.config.steps_per_axis;
            let ((lx, hx), (ly, hy)) = self.window;
            let step_x = (hx.0 - lx.0) / (t - 1) as f64;
            let step_y = (hy.0 - ly.0) / (t - 1) as f64;
            self.window = (
                (
                    Volts((winner.vx.0 - step_x).max(self.config.v_min.0)),
                    Volts((winner.vx.0 + step_x).min(self.config.v_max.0)),
                ),
                (
                    Volts((winner.vy.0 - step_y).max(self.config.v_min.0)),
                    Volts((winner.vy.0 + step_y).min(self.config.v_max.0)),
                ),
            );
            self.plan_iteration(iteration + 1);
            self.applied_at = None;
            self.phase = Phase::Sweeping {
                next: 0,
                iteration: iteration + 1,
            };
        } else {
            let (best_probe, best_power) = self.best.expect("sweep scored probes");
            // Hold the winner: apply it as the final state.
            if now.0 >= psu.next_switch_time().0
                && psu.set_bias(best_probe.vx, best_probe.vy, now).is_ok()
            {
                self.events.push(Event::Converged(best_probe, best_power));
                self.phase = Phase::Converged;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the controller against a synthetic power function until it
    /// converges; reports arrive `report_delay` after each application,
    /// and every `lose_every`-th report is dropped.
    fn run(
        power: impl Fn(Probe) -> f64,
        lose_every: Option<usize>,
    ) -> (Controller, PowerSupply, f64) {
        let mut ctl = Controller::new(SweepConfig::paper_default());
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        ctl.start();
        let mut now = 0.0;
        let mut pending: Option<(f64, PowerReport)> = None;
        let mut report_counter = 0usize;
        for _ in 0..100_000 {
            if ctl.phase() == &Phase::Converged {
                break;
            }
            let deliver = pending.filter(|(due, _)| *due <= now).map(|(_, r)| r);
            if deliver.is_some() {
                pending = None;
            }
            let before_applied = ctl.applied_at;
            ctl.step(&mut psu, Seconds(now), deliver);
            // A new application generates a report after 8 ms.
            if ctl.applied_at != before_applied {
                if let Some(Event::Applied(p)) = ctl.events().last() {
                    report_counter += 1;
                    let lost = lose_every.map(|k| report_counter % k == 0).unwrap_or(false);
                    if !lost {
                        pending = Some((
                            now + 0.008,
                            PowerReport {
                                at: Seconds(now + 0.008),
                                power_dbm: power(*p),
                            },
                        ));
                    }
                }
            }
            now += 0.002;
        }
        (ctl, psu, now)
    }

    fn bump(p: Probe) -> f64 {
        let dx = p.vx.0 - 18.0;
        let dy = p.vy.0 - 9.0;
        -30.0 - 0.05 * (dx * dx + dy * dy)
    }

    #[test]
    fn converges_to_the_peak() {
        let (ctl, _, _) = run(bump, None);
        assert_eq!(ctl.phase(), &Phase::Converged);
        let (best, _) = ctl.best().unwrap();
        assert!((best.vx.0 - 18.0).abs() < 2.0, "vx = {:?}", best.vx);
        assert!((best.vy.0 - 9.0).abs() < 2.0, "vy = {:?}", best.vy);
    }

    #[test]
    fn convergence_time_is_near_paper_budget() {
        // 50 probes at ≥20 ms each plus report latency: a couple of
        // seconds, in the same regime as the paper's ~1 s estimate (they
        // ignore report latency).
        let (_, psu, elapsed) = run(bump, None);
        assert!(elapsed < 5.0, "took {elapsed:.2} s");
        assert!(psu.switch_count >= 50, "switches = {}", psu.switch_count);
    }

    #[test]
    fn psu_rate_limit_respected() {
        let (_, psu, elapsed) = run(bump, None);
        // 51 switches at ≥ 20 ms spacing cannot finish faster than 1 s.
        assert!(elapsed >= psu.switch_count as f64 * 0.02 * 0.9);
    }

    #[test]
    fn recovers_from_lost_reports() {
        let (ctl, _, _) = run(bump, Some(7));
        assert_eq!(ctl.phase(), &Phase::Converged);
        assert!(
            ctl.events()
                .iter()
                .any(|e| matches!(e, Event::ReportTimeout(_))),
            "timeouts should have been logged"
        );
        let (best, _) = ctl.best().unwrap();
        assert!((best.vx.0 - 18.0).abs() < 2.5);
    }

    #[test]
    fn event_log_tells_the_story() {
        let (ctl, _, _) = run(bump, None);
        let events = ctl.events();
        assert!(matches!(events[0], Event::SweepStarted(50)));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Refined { iteration: 0, .. })));
        assert!(matches!(events.last(), Some(Event::Converged(..))));
    }

    #[test]
    fn idle_controller_ignores_steps() {
        let mut ctl = Controller::new(SweepConfig::paper_default());
        let mut psu = PowerSupply::tektronix_2230g();
        ctl.step(&mut psu, Seconds(1.0), None);
        assert_eq!(ctl.phase(), &Phase::Idle);
        assert!(ctl.events().is_empty());
    }
}
