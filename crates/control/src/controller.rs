//! The centralized controller (paper §3.1/§3.3).
//!
//! Consumes receiver power reports, drives the PSU through Algorithm 1,
//! and converges on the bias state that maximizes link power. Modelled
//! as an explicit state machine so the end-to-end system can step it on
//! a simulation clock, inject lost reports, and audit its timing against
//! the supply's 50 Hz switching budget.

use rfmath::telemetry::{RecorderHandle, TelemetryEvent};
use rfmath::units::{Seconds, Volts};

use crate::psu::PowerSupply;
use crate::sweep::{Probe, SweepConfig};

/// Controller lifecycle states.
#[derive(Clone, Debug, PartialEq)]
pub enum Phase {
    /// Waiting to be told to optimize.
    Idle,
    /// Mid-sweep: probing combination `next` of the current plan.
    Sweeping {
        /// Index of the next probe in the plan.
        next: usize,
        /// Refinement iteration (0-based).
        iteration: usize,
    },
    /// Sweep finished; the best state is applied and held.
    Converged,
}

/// A power report from the receiver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerReport {
    /// Receiver timestamp.
    pub at: Seconds,
    /// Measured power, dBm.
    pub power_dbm: f64,
}

/// A power report carrying one reading per fleet device — the
/// multi-device generalization of [`PowerReport`]. A single-link system
/// sends one-element reports.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetReport {
    /// Receiver-side timestamp.
    pub at: Seconds,
    /// Per-device measured powers, dBm, in fleet order.
    pub powers_dbm: Vec<f64>,
}

impl From<PowerReport> for FleetReport {
    fn from(r: PowerReport) -> Self {
        FleetReport {
            at: r.at,
            powers_dbm: vec![r.power_dbm],
        }
    }
}

/// How the controller folds a (possibly multi-device) report into the
/// scalar metric Algorithm 1 maximizes.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Objective {
    /// Classic single link: score = the first (only) reading.
    #[default]
    SingleLink,
    /// Max-min fairness: score = the worst device's power.
    WorstLink,
    /// Access control: score = favored device minus the best other.
    Isolation {
        /// Index of the favored device in the report vector.
        favored: usize,
    },
}

impl Objective {
    /// Folds a report's power vector into the sweep metric. Returns
    /// `None` when the report is unusable — empty, non-finite readings
    /// from a corrupted packet, or (for `Isolation`, which references a
    /// specific index) too short to score. The objective alone cannot
    /// know the fleet size, so `SingleLink`/`WorstLink` score any
    /// non-empty finite vector; set [`Controller::expected_devices`]
    /// to reject truncated or padded reports outright. A `None` makes
    /// the controller treat the report as lost and retry the probe.
    pub fn score(&self, powers_dbm: &[f64]) -> Option<f64> {
        if powers_dbm.is_empty() || powers_dbm.iter().any(|p| !p.is_finite()) {
            return None;
        }
        match self {
            Objective::SingleLink => Some(powers_dbm[0]),
            Objective::WorstLink => Some(powers_dbm.iter().copied().fold(f64::INFINITY, f64::min)),
            Objective::Isolation { favored } => {
                if *favored >= powers_dbm.len() || powers_dbm.len() < 2 {
                    return None;
                }
                let others = powers_dbm
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i != favored)
                    .map(|(_, &p)| p)
                    .fold(f64::NEG_INFINITY, f64::max);
                Some(powers_dbm[*favored] - others)
            }
        }
    }

    /// Scores a whole [`FleetReport`] under this objective, applying the
    /// full admission rule the controller enforces: the vector must be
    /// non-empty and finite, scoreable by the objective, *and* match the
    /// expected arity when one is given. `None` means the report must be
    /// rejected (treated like a lost packet and retried) — the exact
    /// corrupt-report rule [`Controller::step_fleet`] applies, exposed so
    /// other report consumers ([`crate::server::FleetServer`] ingest
    /// paths) inherit it instead of re-deriving it.
    pub fn score_report(
        &self,
        expected_devices: Option<usize>,
        report: &FleetReport,
    ) -> Option<f64> {
        let arity_ok = expected_devices
            .map(|n| report.powers_dbm.len() == n)
            .unwrap_or(true);
        if !arity_ok {
            return None;
        }
        self.score(&report.powers_dbm)
    }
}

/// Bounded retry with exponential backoff for lost probe reports.
///
/// The controller retries an unanswered probe at most `max_attempts`
/// times, widening the report-timeout window by `backoff`× after each
/// loss; a probe that exhausts its attempts is *abandoned* (scored
/// `-∞` so it can never win the sweep) instead of retried forever —
/// the unbounded-retry behavior this replaces would spin indefinitely
/// on a dead receiver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Report deliveries attempted per probe before abandoning it
    /// (values below 1 behave as 1).
    pub max_attempts: usize,
    /// Multiplier applied to the report timeout after each lost
    /// attempt (exponential backoff; 1.0 keeps the window fixed).
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff: 2.0,
        }
    }
}

impl RetryPolicy {
    /// The timeout window for 0-based attempt `attempt`, starting from
    /// `base` and widening by the backoff factor each retry.
    pub fn timeout_for(&self, base: Seconds, attempt: usize) -> Seconds {
        Seconds(base.0 * self.backoff.powi(attempt.min(30) as i32))
    }
}

/// Events the controller emits for logging/diagnosis.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A sweep started with this many planned probes.
    SweepStarted(usize),
    /// A probe's bias state was applied.
    Applied(Probe),
    /// A probe was scored from a report.
    Scored(Probe, f64),
    /// A refinement window was selected.
    Refined {
        /// Iteration that just finished.
        iteration: usize,
        /// Winning probe of the iteration.
        winner: Probe,
    },
    /// The controller converged on its final state.
    Converged(Probe, f64),
    /// A probe timed out waiting for a report and was retried.
    ReportTimeout(Probe),
    /// A report arrived but was unusable — empty, non-finite readings
    /// from a corrupt packet, or a vector length that contradicts
    /// [`Controller::expected_devices`]; the probe stays unscored and
    /// will time out and retry.
    ReportRejected(Probe),
    /// A probe exhausted its [`RetryPolicy`] attempts without a usable
    /// report and was written off (scored `-∞`, never the winner).
    ProbeAbandoned(Probe),
    /// Every probe of the final iteration was abandoned: the sweep has
    /// no winner to hold, so the controller converges empty-handed
    /// (leaving whatever bias the rails already carry) instead of
    /// panicking or retrying forever.
    SweepFailed,
}

/// The centralized controller.
#[derive(Clone, Debug)]
pub struct Controller {
    /// Sweep strategy parameters.
    pub config: SweepConfig,
    /// How long to wait for a report before retrying a probe.
    pub report_timeout: Seconds,
    /// How report vectors are folded into the sweep metric (single link
    /// by default; fleet deployments pick a multi-device objective).
    pub objective: Objective,
    /// Expected report arity. When set, a report whose vector length
    /// differs (a truncated or padded packet) is rejected onto the
    /// retry path instead of being scored over the wrong device set —
    /// `WorstLink` over a truncated report would silently ignore the
    /// missing (possibly worst) devices. `None` accepts any length the
    /// objective itself can score.
    pub expected_devices: Option<usize>,
    /// Bounded retry/backoff applied to lost or rejected reports. The
    /// default (4 attempts, 2× backoff) tolerates the occasional lost
    /// packet while guaranteeing the sweep terminates even against a
    /// receiver that never answers.
    pub retry: RetryPolicy,
    /// Telemetry sink (null by default). Probe applications, scores,
    /// rejections, timeouts and abandonments tick counters; retries
    /// additionally emit [`TelemetryEvent::Retry`] tagged with
    /// [`Controller::telemetry_id`].
    pub recorder: RecorderHandle,
    /// Identity stamped into this controller's telemetry events (the
    /// panel or fleet index it drives); 0 when unset.
    pub telemetry_id: usize,
    phase: Phase,
    plan: Vec<Probe>,
    scores: Vec<Option<f64>>,
    window: ((Volts, Volts), (Volts, Volts)),
    best: Option<(Probe, f64)>,
    applied_at: Option<Seconds>,
    /// Lost deliveries of the probe currently awaiting a report.
    attempts: usize,
    events: Vec<Event>,
    /// Wall-clock anchor of the running sweep, for the convergence span.
    sweep_started: Option<std::time::Instant>,
}

impl Controller {
    /// Creates a controller with the paper's sweep defaults.
    pub fn new(config: SweepConfig) -> Self {
        let window = ((config.v_min, config.v_max), (config.v_min, config.v_max));
        Self {
            config,
            report_timeout: Seconds(0.1),
            objective: Objective::SingleLink,
            expected_devices: None,
            retry: RetryPolicy::default(),
            recorder: RecorderHandle::null(),
            telemetry_id: 0,
            phase: Phase::Idle,
            plan: Vec::new(),
            scores: Vec::new(),
            window,
            best: None,
            applied_at: None,
            attempts: 0,
            events: Vec::new(),
            sweep_started: None,
        }
    }

    /// Attaches a telemetry recorder, tagging this controller's events
    /// with `id` (the panel or fleet index it drives).
    pub fn with_recorder(mut self, recorder: RecorderHandle, id: usize) -> Self {
        self.recorder = recorder;
        self.telemetry_id = id;
        self
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> &Phase {
        &self.phase
    }

    /// The best (probe, power) found so far.
    pub fn best(&self) -> Option<(Probe, f64)> {
        self.best
    }

    /// Emitted event log.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Begins an optimization: plans the first iteration's grid.
    pub fn start(&mut self) {
        self.window = (
            (self.config.v_min, self.config.v_max),
            (self.config.v_min, self.config.v_max),
        );
        self.best = None;
        self.attempts = 0;
        self.plan_iteration(0);
        self.events.push(Event::SweepStarted(
            self.plan.len() * self.config.iterations,
        ));
        self.recorder.add("controller.sweeps_started", 1);
        if self.recorder.enabled() {
            self.sweep_started = Some(std::time::Instant::now());
        }
        self.phase = Phase::Sweeping {
            next: 0,
            iteration: 0,
        };
    }

    fn plan_iteration(&mut self, _iteration: usize) {
        let t = self.config.steps_per_axis;
        let ((lx, hx), (ly, hy)) = self.window;
        let grid = |lo: Volts, hi: Volts, i: usize| {
            Volts(lo.0 + (hi.0 - lo.0) * i as f64 / (t - 1) as f64)
        };
        self.plan.clear();
        self.scores.clear();
        for ix in 0..t {
            for iy in 0..t {
                self.plan.push(Probe {
                    vx: grid(lx, hx, ix),
                    vy: grid(ly, hy, iy),
                });
            }
        }
        self.scores.resize(self.plan.len(), None);
    }

    /// Closes the convergence span opened by [`Controller::start`],
    /// recording the sweep's wall time into the duration histogram.
    fn close_sweep_span(&mut self) {
        if let Some(started) = self.sweep_started.take() {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.recorder.duration_ns("controller.sweep_ns", nanos);
        }
    }

    /// Advances the controller at simulation time `now` with an optional
    /// single-link receiver report. Applies bias states to the PSU as
    /// the switching budget allows. Call repeatedly from the simulation
    /// loop. This is [`Controller::step_fleet`] with a one-element
    /// report vector.
    pub fn step(&mut self, psu: &mut PowerSupply, now: Seconds, report: Option<PowerReport>) {
        self.step_fleet(psu, now, report.map(FleetReport::from));
    }

    /// Advances the controller with an optional multi-device report,
    /// scored through the configured [`Objective`]. Unusable reports
    /// (corrupt readings, wrong arity) are rejected and the probe
    /// retried via the timeout path, exactly like a lost packet.
    pub fn step_fleet(&mut self, psu: &mut PowerSupply, now: Seconds, report: Option<FleetReport>) {
        let Phase::Sweeping { next, iteration } = self.phase.clone() else {
            return;
        };

        // Score the pending probe from a report, if one arrived after the
        // bias was applied (plus settling).
        if let (Some(applied_at), Some(rep)) = (self.applied_at, report) {
            if rep.at.0 >= applied_at.0 + psu.settling.0 && next > 0 {
                let probe_idx = next - 1;
                if self.scores[probe_idx].is_none() {
                    let score = self.objective.score_report(self.expected_devices, &rep);
                    match score {
                        Some(score) => {
                            self.scores[probe_idx] = Some(score);
                            self.attempts = 0;
                            self.events.push(Event::Scored(self.plan[probe_idx], score));
                            self.recorder.add("controller.probes_scored", 1);
                            if self.best.map(|(_, b)| score > b).unwrap_or(true) {
                                self.best = Some((self.plan[probe_idx], score));
                            }
                        }
                        None => {
                            self.events
                                .push(Event::ReportRejected(self.plan[probe_idx]));
                            self.recorder.add("controller.reports_rejected", 1);
                        }
                    }
                }
            }
        }

        // Retry a probe whose report never came — bounded, with the
        // timeout window widening by the backoff factor each loss. A
        // probe that exhausts its attempts is abandoned (scored -∞) so
        // the sweep always terminates.
        if let Some(applied_at) = self.applied_at {
            let window = self.retry.timeout_for(self.report_timeout, self.attempts);
            if next > 0 && self.scores[next - 1].is_none() && now.0 - applied_at.0 > window.0 {
                self.events.push(Event::ReportTimeout(self.plan[next - 1]));
                self.attempts += 1;
                self.recorder.add("controller.report_timeouts", 1);
                let exhausted = self.attempts >= self.retry.max_attempts.max(1);
                if self.recorder.enabled() {
                    self.recorder.emit(TelemetryEvent::Retry {
                        panel: self.telemetry_id,
                        attempt: self.attempts,
                        exhausted,
                    });
                }
                if exhausted {
                    self.scores[next - 1] = Some(f64::NEG_INFINITY);
                    self.events.push(Event::ProbeAbandoned(self.plan[next - 1]));
                    self.recorder.add("controller.probes_abandoned", 1);
                    self.attempts = 0;
                    self.applied_at = None;
                    // Fall through: the sweep moves on to the next probe
                    // (or closes the iteration) this same step.
                } else {
                    // Re-apply the same probe (by rewinding `next`).
                    self.phase = Phase::Sweeping {
                        next: next - 1,
                        iteration,
                    };
                    self.applied_at = None;
                    return;
                }
            }
        }

        // Move on only when the previous probe has been scored.
        if next > 0 && self.scores[next - 1].is_none() {
            return;
        }

        if next < self.plan.len() {
            // Apply the next probe when the PSU allows.
            if now.0 >= psu.next_switch_time().0 {
                let probe = self.plan[next];
                if psu.set_bias(probe.vx, probe.vy, now).is_ok() {
                    self.applied_at = Some(now);
                    self.events.push(Event::Applied(probe));
                    self.recorder.add("controller.probes_applied", 1);
                    self.phase = Phase::Sweeping {
                        next: next + 1,
                        iteration,
                    };
                }
            }
            return;
        }

        // Iteration complete: refine or converge.
        let (winner_idx, _) = self
            .scores
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|v| (i, v)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("every probe scored");
        let winner = self.plan[winner_idx];
        self.events.push(Event::Refined { iteration, winner });

        if iteration + 1 < self.config.iterations {
            let t = self.config.steps_per_axis;
            let ((lx, hx), (ly, hy)) = self.window;
            let step_x = (hx.0 - lx.0) / (t - 1) as f64;
            let step_y = (hy.0 - ly.0) / (t - 1) as f64;
            self.window = (
                (
                    Volts((winner.vx.0 - step_x).max(self.config.v_min.0)),
                    Volts((winner.vx.0 + step_x).min(self.config.v_max.0)),
                ),
                (
                    Volts((winner.vy.0 - step_y).max(self.config.v_min.0)),
                    Volts((winner.vy.0 + step_y).min(self.config.v_max.0)),
                ),
            );
            self.plan_iteration(iteration + 1);
            self.applied_at = None;
            self.phase = Phase::Sweeping {
                next: 0,
                iteration: iteration + 1,
            };
        } else {
            match self.best {
                Some((best_probe, best_power)) => {
                    // Hold the winner: apply it as the final state.
                    if now.0 >= psu.next_switch_time().0
                        && psu.set_bias(best_probe.vx, best_probe.vy, now).is_ok()
                    {
                        self.events.push(Event::Converged(best_probe, best_power));
                        self.recorder.add("controller.sweeps_converged", 1);
                        self.close_sweep_span();
                        self.phase = Phase::Converged;
                    }
                }
                None => {
                    // Every probe was abandoned (a dead receiver): there
                    // is no winner to hold. Converge empty-handed — the
                    // rails keep whatever bias the last applied probe
                    // left — rather than panic or spin forever.
                    self.events.push(Event::SweepFailed);
                    self.recorder.add("controller.sweeps_failed", 1);
                    self.close_sweep_span();
                    self.phase = Phase::Converged;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the controller against a synthetic power function until it
    /// converges; reports arrive `report_delay` after each application,
    /// and every `lose_every`-th report is dropped.
    fn run(
        power: impl Fn(Probe) -> f64,
        lose_every: Option<usize>,
    ) -> (Controller, PowerSupply, f64) {
        let mut ctl = Controller::new(SweepConfig::paper_default());
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        ctl.start();
        let mut now = 0.0;
        let mut pending: Option<(f64, PowerReport)> = None;
        let mut report_counter = 0usize;
        for _ in 0..100_000 {
            if ctl.phase() == &Phase::Converged {
                break;
            }
            let deliver = pending.filter(|(due, _)| *due <= now).map(|(_, r)| r);
            if deliver.is_some() {
                pending = None;
            }
            let before_applied = ctl.applied_at;
            ctl.step(&mut psu, Seconds(now), deliver);
            // A new application generates a report after 8 ms.
            if ctl.applied_at != before_applied {
                if let Some(Event::Applied(p)) = ctl.events().last() {
                    report_counter += 1;
                    let lost = lose_every.map(|k| report_counter % k == 0).unwrap_or(false);
                    if !lost {
                        pending = Some((
                            now + 0.008,
                            PowerReport {
                                at: Seconds(now + 0.008),
                                power_dbm: power(*p),
                            },
                        ));
                    }
                }
            }
            now += 0.002;
        }
        (ctl, psu, now)
    }

    fn bump(p: Probe) -> f64 {
        let dx = p.vx.0 - 18.0;
        let dy = p.vy.0 - 9.0;
        -30.0 - 0.05 * (dx * dx + dy * dy)
    }

    #[test]
    fn converges_to_the_peak() {
        let (ctl, _, _) = run(bump, None);
        assert_eq!(ctl.phase(), &Phase::Converged);
        let (best, _) = ctl.best().unwrap();
        assert!((best.vx.0 - 18.0).abs() < 2.0, "vx = {:?}", best.vx);
        assert!((best.vy.0 - 9.0).abs() < 2.0, "vy = {:?}", best.vy);
    }

    #[test]
    fn convergence_time_is_near_paper_budget() {
        // 50 probes at ≥20 ms each plus report latency: a couple of
        // seconds, in the same regime as the paper's ~1 s estimate (they
        // ignore report latency).
        let (_, psu, elapsed) = run(bump, None);
        assert!(elapsed < 5.0, "took {elapsed:.2} s");
        assert!(psu.switch_count >= 50, "switches = {}", psu.switch_count);
    }

    #[test]
    fn psu_rate_limit_respected() {
        let (_, psu, elapsed) = run(bump, None);
        // 51 switches at ≥ 20 ms spacing cannot finish faster than 1 s.
        assert!(elapsed >= psu.switch_count as f64 * 0.02 * 0.9);
    }

    #[test]
    fn recovers_from_lost_reports() {
        let (ctl, _, _) = run(bump, Some(7));
        assert_eq!(ctl.phase(), &Phase::Converged);
        assert!(
            ctl.events()
                .iter()
                .any(|e| matches!(e, Event::ReportTimeout(_))),
            "timeouts should have been logged"
        );
        let (best, _) = ctl.best().unwrap();
        assert!((best.vx.0 - 18.0).abs() < 2.5);
    }

    #[test]
    fn event_log_tells_the_story() {
        let (ctl, _, _) = run(bump, None);
        let events = ctl.events();
        assert!(matches!(events[0], Event::SweepStarted(50)));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Refined { iteration: 0, .. })));
        assert!(matches!(events.last(), Some(Event::Converged(..))));
    }

    /// Event-steps a fleet controller against a synthetic per-device
    /// power function; `mangle` can corrupt or drop report `k`.
    fn run_fleet(
        objective: Objective,
        power: impl Fn(Probe) -> Vec<f64>,
        mangle: impl Fn(usize, FleetReport) -> Option<FleetReport>,
    ) -> Controller {
        let mut ctl = Controller::new(SweepConfig::paper_default());
        ctl.objective = objective;
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        ctl.start();
        let mut now = 0.0;
        let mut pending: Option<(f64, FleetReport)> = None;
        let mut counter = 0usize;
        for _ in 0..200_000 {
            if ctl.phase() == &Phase::Converged {
                break;
            }
            let deliver = pending
                .clone()
                .filter(|(due, _)| *due <= now)
                .map(|(_, r)| r);
            if deliver.is_some() {
                pending = None;
            }
            let before_applied = ctl.applied_at;
            ctl.step_fleet(&mut psu, Seconds(now), deliver);
            if ctl.applied_at != before_applied {
                if let Some(Event::Applied(p)) = ctl.events().last() {
                    counter += 1;
                    let report = FleetReport {
                        at: Seconds(now + 0.008),
                        powers_dbm: power(*p),
                    };
                    pending = mangle(counter, report).map(|r| (now + 0.008, r));
                }
            }
            now += 0.002;
        }
        ctl
    }

    fn two_bumps(p: Probe) -> Vec<f64> {
        let d1 = (p.vx.0 - 8.0).powi(2) + (p.vy.0 - 8.0).powi(2);
        let d2 = (p.vx.0 - 22.0).powi(2) + (p.vy.0 - 22.0).powi(2);
        vec![-40.0 - 0.05 * d1, -40.0 - 0.05 * d2]
    }

    #[test]
    fn worst_link_objective_finds_the_compromise() {
        let ctl = run_fleet(Objective::WorstLink, two_bumps, |_, r| Some(r));
        assert_eq!(ctl.phase(), &Phase::Converged);
        let (best, _) = ctl.best().unwrap();
        // Max-min of two symmetric bumps sits midway, not on a peak.
        assert!(
            (best.vx.0 - 15.0).abs() < 3.0 && (best.vy.0 - 15.0).abs() < 3.0,
            "best = {best:?}"
        );
    }

    #[test]
    fn corrupt_reports_are_rejected_then_retried() {
        // Every 5th report arrives with a NaN reading (decoded from a
        // corrupted packet): the controller must reject it, retry the
        // probe, and still converge on the true peak.
        let ctl = run_fleet(
            Objective::SingleLink,
            |p| vec![bump(p)],
            |k, mut r| {
                if k % 5 == 0 {
                    r.powers_dbm[0] = f64::NAN;
                }
                Some(r)
            },
        );
        assert_eq!(ctl.phase(), &Phase::Converged);
        assert!(
            ctl.events()
                .iter()
                .any(|e| matches!(e, Event::ReportRejected(_))),
            "rejections should have been logged"
        );
        let (best, score) = ctl.best().unwrap();
        assert!(score.is_finite(), "corrupt readings must never be scored");
        assert!((best.vx.0 - 18.0).abs() < 2.5, "best = {best:?}");
    }

    #[test]
    fn dropped_fleet_reports_time_out_and_retry() {
        let ctl = run_fleet(Objective::WorstLink, two_bumps, |k, r| {
            if k % 6 == 0 {
                None
            } else {
                Some(r)
            }
        });
        assert_eq!(ctl.phase(), &Phase::Converged);
        assert!(ctl
            .events()
            .iter()
            .any(|e| matches!(e, Event::ReportTimeout(_))));
    }

    #[test]
    fn dead_receiver_abandons_probes_and_terminates() {
        // Every report is lost. The unbounded-retry controller would
        // spin on probe 0 forever; the bounded policy must abandon each
        // probe after max_attempts losses and converge empty-handed.
        let ctl = run_fleet(Objective::WorstLink, two_bumps, |_, _| None);
        assert_eq!(ctl.phase(), &Phase::Converged);
        assert!(ctl.best().is_none(), "nothing was ever scored");
        let abandoned = ctl
            .events()
            .iter()
            .filter(|e| matches!(e, Event::ProbeAbandoned(_)))
            .count();
        let timeouts = ctl
            .events()
            .iter()
            .filter(|e| matches!(e, Event::ReportTimeout(_)))
            .count();
        // 2 iterations × 25 probes, each abandoned after exactly
        // max_attempts timeouts.
        assert_eq!(abandoned, 50);
        assert_eq!(timeouts, abandoned * RetryPolicy::default().max_attempts);
        assert!(
            matches!(ctl.events().last(), Some(Event::SweepFailed)),
            "the failed sweep must be logged"
        );
    }

    #[test]
    fn backoff_widens_the_retry_window() {
        let retry = RetryPolicy::default();
        let base = Seconds(0.1);
        assert_eq!(retry.timeout_for(base, 0), Seconds(0.1));
        assert_eq!(retry.timeout_for(base, 1), Seconds(0.2));
        assert_eq!(retry.timeout_for(base, 2), Seconds(0.4));
        let fixed = RetryPolicy {
            max_attempts: 3,
            backoff: 1.0,
        };
        assert_eq!(fixed.timeout_for(base, 5), base);
    }

    #[test]
    fn a_single_dead_probe_is_abandoned_but_the_sweep_still_wins() {
        // One probe's reports are lost on every delivery attempt (the
        // probe first applied at k = 3 is re-applied at k = 4, 5, 6 as
        // it retries): it must be abandoned while every other probe
        // scores normally, and the sweep converges on the true peak.
        let ctl = run_fleet(
            Objective::SingleLink,
            |p| vec![bump(p)],
            |k, r| if (3..=6).contains(&k) { None } else { Some(r) },
        );
        assert_eq!(ctl.phase(), &Phase::Converged);
        assert!(ctl
            .events()
            .iter()
            .any(|e| matches!(e, Event::ProbeAbandoned(_))));
        let (best, score) = ctl.best().unwrap();
        assert!(score.is_finite());
        assert!((best.vx.0 - 18.0).abs() < 2.5, "best = {best:?}");
    }

    #[test]
    fn empty_and_wrong_arity_reports_are_unusable() {
        assert_eq!(Objective::SingleLink.score(&[]), None);
        assert_eq!(Objective::WorstLink.score(&[f64::INFINITY]), None);
        assert_eq!(
            Objective::Isolation { favored: 2 }.score(&[-40.0, -50.0]),
            None
        );
        assert_eq!(Objective::Isolation { favored: 0 }.score(&[-40.0]), None);
        assert_eq!(
            Objective::Isolation { favored: 0 }.score(&[-40.0, -52.0]),
            Some(12.0)
        );
        assert_eq!(Objective::WorstLink.score(&[-40.0, -52.0]), Some(-52.0));
        assert_eq!(Objective::SingleLink.score(&[-33.0, -99.0]), Some(-33.0));
    }

    #[test]
    fn arity_mismatch_is_rejected_when_expected_devices_set() {
        let mut ctl = Controller::new(SweepConfig::paper_default());
        ctl.objective = Objective::WorstLink;
        ctl.expected_devices = Some(2);
        let mut psu = PowerSupply::tektronix_2230g();
        psu.execute("OUTP ON", Seconds(0.0));
        ctl.start();
        let mut now = 0.0;
        while !matches!(ctl.events().last(), Some(Event::Applied(_))) && now < 1.0 {
            now += 0.002;
            ctl.step_fleet(&mut psu, Seconds(now), None);
        }
        // A truncated (1-element) report would be happily scored by
        // WorstLink alone; the expected arity must veto it.
        let report_at = Seconds(now + 0.05);
        ctl.step_fleet(
            &mut psu,
            report_at,
            Some(FleetReport {
                at: report_at,
                powers_dbm: vec![-40.0],
            }),
        );
        assert!(matches!(
            ctl.events().last(),
            Some(Event::ReportRejected(_))
        ));
        assert!(ctl.best().is_none());
        // A full-arity report for the same probe scores normally.
        let report_at = Seconds(now + 0.06);
        ctl.step_fleet(
            &mut psu,
            report_at,
            Some(FleetReport {
                at: report_at,
                powers_dbm: vec![-40.0, -50.0],
            }),
        );
        // (The same step may already apply the next probe, so scan the
        // log rather than peeking at the last event.)
        assert!(ctl
            .events()
            .iter()
            .any(|e| matches!(e, Event::Scored(_, s) if *s == -50.0)));
        assert_eq!(ctl.best().unwrap().1, -50.0);
    }

    #[test]
    fn scalar_step_is_the_one_element_fleet_case() {
        let (scalar_ctl, _, _) = run(bump, None);
        let fleet_ctl = run_fleet(Objective::SingleLink, |p| vec![bump(p)], |_, r| Some(r));
        assert_eq!(scalar_ctl.best().unwrap().0, fleet_ctl.best().unwrap().0);
        assert_eq!(scalar_ctl.best().unwrap().1, fleet_ctl.best().unwrap().1);
    }

    #[test]
    fn idle_controller_ignores_steps() {
        let mut ctl = Controller::new(SweepConfig::paper_default());
        let mut psu = PowerSupply::tektronix_2230g();
        ctl.step(&mut psu, Seconds(1.0), None);
        assert_eq!(ctl.phase(), &Phase::Idle);
        assert!(ctl.events().is_empty());
    }
}
