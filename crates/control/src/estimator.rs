//! Polarization-rotation-degree estimation (paper §3.4, Figure 12).
//!
//! Knowing *how far* the surface rotated the wave — not just that some
//! bias maximized power — requires a calibration procedure, because the
//! power-vs-angle slope depends on the (unknown) link distance. The
//! paper's three-step method, implemented here against a turntable
//! abstraction:
//!
//! 1. with the surface quiescent, rotate the receiver to find the
//!    orientation `θ0` of maximum power (co-alignment);
//! 2. sweep the bias voltages and record the combinations `Vmin`/`Vmax`
//!    giving minimum and maximum received power;
//! 3. at each of those bias states, rotate the receiver again to find
//!    its new best orientation; the differences `|θ0 − θmin|` and
//!    `|θ0 − θmax|` are the minimum and maximum rotation angles.

use rfmath::units::{Degrees, Volts};

/// Access the estimator needs to the experiment: orient the receiver,
/// set the surface bias, read the received power. Implemented by the
/// device layer (turntable + receiver + PSU).
pub trait RotationRig {
    /// Sets the receiver's roll orientation.
    fn set_rx_orientation(&mut self, orientation: Degrees);
    /// Sets the surface bias rails.
    fn set_bias(&mut self, vx: Volts, vy: Volts);
    /// Reads the received power (dBm or any monotone metric).
    fn measure_power(&mut self) -> f64;
}

/// Result of the §3.4 procedure.
#[derive(Clone, Debug)]
pub struct RotationEstimate {
    /// Receiver orientation of maximum power with the neutral bias.
    pub theta0: Degrees,
    /// Bias state minimizing received power at `theta0`.
    pub v_min: (Volts, Volts),
    /// Bias state maximizing received power at `theta0`.
    pub v_max: (Volts, Volts),
    /// Minimum rotation angle `|θ0 − θ(Vmin)|` (paper: ≈5°).
    pub min_rotation: Degrees,
    /// Maximum rotation angle `|θ0 − θ(Vmax)|` (paper: ≈45°).
    pub max_rotation: Degrees,
}

/// Orientation search: scans `[0°, 180°)` in `step`-degree increments
/// and returns the best orientation (power is π-periodic in roll).
pub fn best_orientation(rig: &mut dyn RotationRig, step: f64) -> Degrees {
    assert!(step > 0.0 && step < 90.0, "unreasonable scan step");
    let mut best = (0.0, f64::NEG_INFINITY);
    let mut angle = 0.0;
    while angle < 180.0 {
        rig.set_rx_orientation(Degrees(angle));
        let p = rig.measure_power();
        if p > best.1 {
            best = (angle, p);
        }
        angle += step;
    }
    Degrees(best.0)
}

/// Angular difference on the orientation (mod-180°) circle, in `[0, 90]`.
pub fn orientation_distance(a: Degrees, b: Degrees) -> Degrees {
    let d = (a.0 - b.0).rem_euclid(180.0);
    Degrees(d.min(180.0 - d))
}

/// Runs the full §3.4 estimation procedure.
///
/// `bias_grid` is the set of (Vx, Vy) combinations swept in step 2;
/// `scan_step` the turntable resolution (the paper's turntable is
/// remote-controlled and can be stepped finely; 1–2° is realistic).
pub fn estimate_rotation(
    rig: &mut dyn RotationRig,
    neutral_bias: (Volts, Volts),
    bias_grid: &[(Volts, Volts)],
    scan_step: f64,
) -> RotationEstimate {
    assert!(!bias_grid.is_empty(), "need at least one bias combination");

    // Step 1: co-align the receiver under the neutral bias.
    rig.set_bias(neutral_bias.0, neutral_bias.1);
    let theta0 = best_orientation(rig, scan_step);
    rig.set_rx_orientation(theta0);

    // Step 2: sweep the bias grid at fixed orientation θ0.
    let mut v_min = bias_grid[0];
    let mut v_max = bias_grid[0];
    let mut p_min = f64::INFINITY;
    let mut p_max = f64::NEG_INFINITY;
    for &(vx, vy) in bias_grid {
        rig.set_bias(vx, vy);
        let p = rig.measure_power();
        if p < p_min {
            p_min = p;
            v_min = (vx, vy);
        }
        if p > p_max {
            p_max = p;
            v_max = (vx, vy);
        }
    }

    // Step 3: re-scan orientation at each extreme bias state.
    rig.set_bias(v_min.0, v_min.1);
    let theta_min = best_orientation(rig, scan_step);
    rig.set_bias(v_max.0, v_max.1);
    let theta_max = best_orientation(rig, scan_step);

    RotationEstimate {
        theta0,
        v_min,
        v_max,
        // Vmin leaves the most residual mismatch ⇒ its orientation shift
        // is the *largest* rotation; Vmax restores alignment ⇒ smallest.
        // The paper names them by the power extreme they derive from.
        min_rotation: orientation_distance(theta0, theta_max),
        max_rotation: orientation_distance(theta0, theta_min),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic rig: the surface rotates the wave by a bias-dependent
    /// angle; received power follows Malus' law against the receiver
    /// orientation, with the transmitter fixed at 90° (vertical).
    struct SynthRig {
        rx_orientation: f64,
        bias: (f64, f64),
        tx_orientation: f64,
    }

    impl SynthRig {
        /// Bias-to-rotation law used by the synthetic surface.
        fn rotation_for(bias: (f64, f64)) -> f64 {
            // Smooth, asymmetric in (vx, vy): 5° + up to ~40° swing.
            5.0 + 40.0 * ((bias.0 - bias.1) / 28.0).tanh().abs()
        }
    }

    impl RotationRig for SynthRig {
        fn set_rx_orientation(&mut self, orientation: Degrees) {
            self.rx_orientation = orientation.0;
        }
        fn set_bias(&mut self, vx: Volts, vy: Volts) {
            self.bias = (vx.0, vy.0);
        }
        fn measure_power(&mut self) -> f64 {
            let wave = self.tx_orientation + Self::rotation_for(self.bias);
            let delta = (wave - self.rx_orientation).to_radians();
            // Malus with a −20 dB cross-pol floor.
            delta.cos().powi(2).max(0.01)
        }
    }

    fn grid() -> Vec<(Volts, Volts)> {
        let vals = [2.0, 6.0, 15.0, 30.0];
        let mut g = Vec::new();
        for &x in &vals {
            for &y in &vals {
                g.push((Volts(x), Volts(y)));
            }
        }
        g
    }

    #[test]
    fn best_orientation_finds_copolar_angle() {
        let mut rig = SynthRig {
            rx_orientation: 0.0,
            bias: (6.0, 6.0),
            tx_orientation: 90.0,
        };
        rig.set_bias(Volts(6.0), Volts(6.0)); // rotation = 5°
        let theta = best_orientation(&mut rig, 1.0);
        assert!(
            orientation_distance(theta, Degrees(95.0)).0 < 1.0,
            "θ = {theta:?}"
        );
    }

    #[test]
    fn orientation_distance_wraps() {
        assert!((orientation_distance(Degrees(5.0), Degrees(175.0)).0 - 10.0).abs() < 1e-9);
        assert!((orientation_distance(Degrees(0.0), Degrees(90.0)).0 - 90.0).abs() < 1e-9);
    }

    #[test]
    fn full_procedure_recovers_rotation_range() {
        let mut rig = SynthRig {
            rx_orientation: 0.0,
            bias: (6.0, 6.0),
            tx_orientation: 90.0,
        };
        let est = estimate_rotation(&mut rig, (Volts(6.0), Volts(6.0)), &grid(), 1.0);
        // Synthetic law spans 5°…45°; estimates must land close to the
        // *relative* span (procedure measures angles relative to θ0,
        // which itself sits 5° rotated).
        // Relative to θ0 (which sits at the law's 5° floor) the maximum
        // reachable shift is 40·tanh(1) ≈ 30.5°.
        assert!(
            est.max_rotation.0 > 25.0,
            "max rotation = {:?}",
            est.max_rotation
        );
        assert!(
            est.min_rotation.0 < 6.0,
            "min rotation = {:?}",
            est.min_rotation
        );
    }

    #[test]
    fn vmax_restores_power_at_theta0() {
        // The bias the sweep calls Vmax must actually deliver more power
        // at θ0 than Vmin does.
        let mut rig = SynthRig {
            rx_orientation: 0.0,
            bias: (6.0, 6.0),
            tx_orientation: 90.0,
        };
        let est = estimate_rotation(&mut rig, (Volts(6.0), Volts(6.0)), &grid(), 1.0);
        rig.set_rx_orientation(est.theta0);
        rig.set_bias(est.v_max.0, est.v_max.1);
        let p_max = rig.measure_power();
        rig.set_bias(est.v_min.0, est.v_min.1);
        let p_min = rig.measure_power();
        assert!(p_max > p_min);
    }

    #[test]
    #[should_panic(expected = "at least one bias")]
    fn empty_grid_is_rejected() {
        let mut rig = SynthRig {
            rx_orientation: 0.0,
            bias: (0.0, 0.0),
            tx_orientation: 90.0,
        };
        let _ = estimate_rotation(&mut rig, (Volts(0.0), Volts(0.0)), &[], 1.0);
    }
}
