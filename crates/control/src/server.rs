//! Sharded many-fleet serving: one controller process, many fleets.
//!
//! The paper's controller drives *one* optimization at a time; ROADMAP's
//! city-block item asks for the next scaling lever — a controller that
//! multiplexes many fleets (each its own device population behind its
//! own panel array) concurrently. [`FleetServer`] is that engine,
//! built from the same primitives as the rest of the workspace:
//!
//! * **per-shard deques + work stealing** (no external channel or async
//!   runtime): every job is hashed to one of `shards` deques up front,
//!   each worker owns a home shard it drains from the front, and an idle
//!   worker steals from the *tail* of sibling shards — bursty arrival
//!   patterns never serialize on a single queue lock, and the steal side
//!   touches the opposite end of each deque from its owner;
//! * **`std::thread::scope` workers** (like `rfmath::par`) that pull
//!   jobs and run a caller-supplied handler — the handler is where a
//!   typed front (e.g. `llama_core`'s scheduler) plugs in a per-fleet
//!   optimization;
//! * **corrupt-report rejection inherited from [`Controller`]**: report
//!   ingest funnels through [`Objective::score_report`], the exact
//!   admission rule [`Controller::step_fleet`] applies, so a server-side
//!   consumer can never score a report the event-stepped controller
//!   would have rejected.
//!
//! Results come back in submission order and are bit-identical to
//! running the handler serially — workers share nothing but the shard
//! deques, so concurrency (and stealing) is purely an elapsed-time
//! optimization. Which shard ran a job, and whether it was stolen,
//! never leaks into the result.
//!
//! ```
//! use control::server::FleetServer;
//!
//! let server = FleetServer::new(4).with_shards(2);
//! let squares = server.serve((0..16u64).collect(), |_, n| n * n);
//! assert_eq!(squares[5], 25);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rfmath::telemetry::{RecorderHandle, TelemetryEvent};
use rfmath::units::Seconds;

use crate::controller::{FleetReport, Objective};

#[allow(unused_imports)] // rustdoc link target
use crate::controller::Controller;

/// The work-stealing shard set: every job lands in one deque up front
/// (hashed by submission index), workers drain their home shard from
/// the front and steal from the tail of siblings when idle. All jobs
/// are staged before any worker starts, so an empty sweep across every
/// shard means the run is drained — no condvars, no close protocol.
struct ShardedQueue<T> {
    shards: Vec<Mutex<VecDeque<(Instant, T)>>>,
    /// Jobs taken from a non-home shard.
    steals: AtomicUsize,
    /// Summed stage-to-pop latency across all jobs, nanoseconds.
    wait_nanos: AtomicU64,
}

impl<T> ShardedQueue<T> {
    fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            steals: AtomicUsize::new(0),
            wait_nanos: AtomicU64::new(0),
        }
    }

    /// Stages one job on `shard` (pre-worker, single-threaded).
    fn stage(&self, shard: usize, job: T) {
        self.shards[shard % self.shards.len()]
            .lock()
            .expect("shard poisoned")
            .push_back((Instant::now(), job));
    }

    /// Takes the next job for a worker homed on `home`: front of the
    /// home shard first, then the tail of each sibling shard in
    /// round-robin order. `None` means every shard is empty — with all
    /// jobs staged up front, that is the drained state. A `Some` carries
    /// the shard the job actually came from and the stage-to-pop
    /// latency in nanoseconds, so the caller can attribute steals and
    /// queue wait per job.
    fn pop(&self, home: usize) -> Option<(T, usize, u64)> {
        let k = self.shards.len();
        let home = home % k;
        for offset in 0..k {
            let shard = (home + offset) % k;
            let taken = {
                let mut deque = match self.shards[shard].lock() {
                    Ok(deque) => deque,
                    Err(poisoned) => poisoned.into_inner(),
                };
                if offset == 0 {
                    deque.pop_front()
                } else {
                    deque.pop_back()
                }
            };
            if let Some((staged, job)) = taken {
                if offset != 0 {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                }
                let waited = staged.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                self.wait_nanos.fetch_add(waited, Ordering::Relaxed);
                return Some((job, shard, waited));
            }
        }
        None
    }
}

/// The shard a submission index hashes to (splitmix64 finalizer — the
/// same seeded-stream primitive `core::faults` draws from, so nearby
/// indices scatter instead of clustering on one shard).
fn shard_of(index: usize, shards: usize) -> usize {
    let mut z = (index as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards.max(1) as u64) as usize
}

/// Why one job of a [`FleetServer::try_serve_with_stats`] run failed.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The handler panicked; the worker caught the unwind, kept
    /// draining the shards, and recorded the panic payload here.
    Panicked(String),
    /// The handler finished, but only after blowing the server's
    /// per-job deadline — its result is discarded as stale (a fleet
    /// optimization that outlives its tick serves nobody).
    DeadlineExceeded {
        /// The configured per-job wall-clock budget.
        limit: Seconds,
        /// What the job actually took.
        took: Seconds,
    },
    /// The job never ran (defensive: with all jobs staged up front and
    /// panics caught per job, every slot is filled in practice).
    Abandoned,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "handler panicked: {msg}"),
            JobError::DeadlineExceeded { limit, took } => write!(
                f,
                "deadline exceeded: {:.1} ms against a {:.1} ms budget",
                took.0 * 1e3,
                limit.0 * 1e3
            ),
            JobError::Abandoned => write!(f, "job never ran"),
        }
    }
}

impl std::error::Error for JobError {}

/// Telemetry of one [`FleetServer::serve`] run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeStats {
    /// Jobs completed (always the submission count — the server never
    /// drops work).
    pub completed: usize,
    /// Jobs that came back as a [`JobError`] (panicked handler or a
    /// blown deadline).
    pub failed: usize,
    /// Shard deques the run distributed jobs across.
    pub shards: usize,
    /// Jobs a worker took from a shard other than its home — the
    /// load-imbalance signal (zero when every shard drained locally).
    pub steals: usize,
    /// Mean stage-to-pop latency per job, in **seconds** (the `Seconds`
    /// newtype carries the unit): how long work sat in a shard deque
    /// before a worker picked it up.
    pub mean_queue_wait: Seconds,
    /// Median stage-to-pop latency, in seconds — exact (computed from
    /// the per-job waits, not a histogram estimate). The mean alone
    /// hides a starved tail; p50/p95 together expose it.
    pub queue_wait_p50: Seconds,
    /// 95th-percentile stage-to-pop latency, in seconds (exact).
    pub queue_wait_p95: Seconds,
    /// Workers that ran at least one job.
    pub workers_used: usize,
}

/// The many-fleet controller front: a fixed worker pool draining
/// per-fleet jobs from work-stealing shard deques.
///
/// `FleetServer` is deliberately generic over the job type — the control
/// crate sits *below* the fleet model, so the typed integration
/// (`Fleet` in, `FleetOutcome` out) lives with the fleet types and plugs
/// in through the handler closure. What the server owns is the
/// scheduling contract: sharded admission with stealing, deterministic
/// submission-order results, and the shared report-admission rule.
#[derive(Clone, Debug)]
pub struct FleetServer {
    /// Worker threads draining the shards (≥ 1).
    pub workers: usize,
    /// Shard deques jobs are hashed across (≥ 1). More shards cut
    /// contention between workers; fewer shards cut steal traffic.
    pub shards: usize,
    /// Optional per-job wall-clock budget. A job whose handler runs
    /// longer comes back as [`JobError::DeadlineExceeded`] from
    /// [`FleetServer::try_serve_with_stats`] — the worker is never
    /// killed mid-job (cooperative model), but the stale result is
    /// discarded instead of served. `None` (the default) disables it.
    pub deadline: Option<Seconds>,
    /// Telemetry sink. Defaults to the null recorder (zero overhead);
    /// with a ring attached the server emits `job_enqueued` /
    /// `job_stolen` / `job_completed` events and queue-wait / job-wall
    /// duration histograms. Event *order* across workers is only
    /// deterministic with `workers == 1` (the `--trace` configuration);
    /// results are deterministic regardless.
    pub recorder: RecorderHandle,
}

impl FleetServer {
    /// A server with `workers` threads and one shard per worker (each
    /// worker home-drains its own deque; stealing only kicks in when
    /// the hash leaves a shard short).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            workers,
            shards: workers,
            deadline: None,
            recorder: RecorderHandle::null(),
        }
    }

    /// Sets the shard count (clamped to ≥ 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the per-job deadline.
    pub fn with_deadline(mut self, deadline: Seconds) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a telemetry recorder.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// The fault-isolating serve: every job comes back as a
    /// `Result<R, JobError>` in submission order. A panicking handler is
    /// caught *inside* its worker — the worker records the failure for
    /// that one job and keeps draining the shards, so one poisoned fleet
    /// cannot take down its siblings. With a
    /// [`deadline`](FleetServer::deadline) set, a job whose handler
    /// outruns the budget is failed as stale.
    pub fn try_serve_with_stats<J, R>(
        &self,
        jobs: Vec<J>,
        handler: impl Fn(usize, J) -> R + Sync,
    ) -> (Vec<Result<R, JobError>>, ServeStats)
    where
        J: Send,
        R: Send,
    {
        let n = jobs.len();
        let shards = self.shards.max(1);
        let workers = self.workers.max(1).min(n.max(1));
        let deadline = self.deadline;
        let recorder = &self.recorder;
        let traced = recorder.enabled();
        let queue: ShardedQueue<(usize, J)> = ShardedQueue::new(shards);
        // Stage everything before any worker starts: the shard a job
        // hashes to depends only on its submission index, and results
        // land in indexed slots, so execution order (including steals)
        // cannot perturb the output. Enqueue events fire here, in
        // submission order, before any worker thread exists — the
        // deterministic prefix of the event stream.
        let mut depths = vec![0u64; shards];
        for (idx, job) in jobs.into_iter().enumerate() {
            let shard = shard_of(idx, shards);
            queue.stage(shard, (idx, job));
            if traced {
                depths[shard] += 1;
                recorder.emit(TelemetryEvent::JobEnqueued { shard, job: idx });
            }
        }
        if traced {
            recorder.add("server.jobs", n as u64);
            for &depth in &depths {
                recorder.record_value("server.shard_depth", depth);
            }
        }
        let results: Vec<Mutex<Option<Result<R, JobError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        // Per-job stage-to-pop wait, for exact p50/p95 after the join
        // (slot 0 is also "never popped", which cannot survive a drain).
        let waits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let used = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            let queue = &queue;
            let results = &results;
            let waits = &waits;
            let handler = &handler;
            let used = &used;
            for worker in 0..workers {
                scope.spawn(move || {
                    let mut ran_any = false;
                    let home = worker % shards;
                    while let Some(((idx, job), from, waited_ns)) = queue.pop(worker) {
                        ran_any = true;
                        waits[idx].store(waited_ns, Ordering::Relaxed);
                        if traced {
                            recorder.duration_ns("server.queue_wait_ns", waited_ns);
                            if from != home {
                                recorder.emit(TelemetryEvent::JobStolen {
                                    home,
                                    from,
                                    job: idx,
                                });
                            }
                        }
                        let started = Instant::now();
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| handler(idx, job)));
                        let took = Seconds(started.elapsed().as_secs_f64());
                        let entry = match out {
                            Ok(result) => match deadline {
                                Some(limit) if took.0 > limit.0 => {
                                    Err(JobError::DeadlineExceeded { limit, took })
                                }
                                _ => Ok(result),
                            },
                            Err(payload) => Err(JobError::Panicked(panic_message(&*payload))),
                        };
                        if traced {
                            recorder
                                .duration_ns("server.job_wall_ns", (took.0 * 1e9).max(0.0) as u64);
                            recorder.emit(TelemetryEvent::JobCompleted {
                                shard: from,
                                job: idx,
                                ok: entry.is_ok(),
                            });
                        }
                        let mut slot = match results[idx].lock() {
                            Ok(slot) => slot,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        *slot = Some(entry);
                    }
                    if ran_any {
                        used.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });

        let out: Vec<Result<R, JobError>> = results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .unwrap_or(Err(JobError::Abandoned))
            })
            .collect();
        let wait_secs: Vec<f64> = waits
            .iter()
            .map(|w| w.load(Ordering::Relaxed) as f64 * 1e-9)
            .collect();
        let stats = ServeStats {
            completed: n,
            failed: out.iter().filter(|r| r.is_err()).count(),
            shards,
            steals: queue.steals.load(Ordering::Relaxed),
            mean_queue_wait: Seconds(if n == 0 {
                0.0
            } else {
                queue.wait_nanos.load(Ordering::Relaxed) as f64 * 1e-9 / n as f64
            }),
            queue_wait_p50: Seconds(if n == 0 {
                0.0
            } else {
                rfmath::stats::percentile(&wait_secs, 50.0)
            }),
            queue_wait_p95: Seconds(if n == 0 {
                0.0
            } else {
                rfmath::stats::percentile(&wait_secs, 95.0)
            }),
            workers_used: used.load(Ordering::Relaxed),
        };
        (out, stats)
    }

    /// Runs every job through `handler` on the worker pool and returns
    /// the results in submission order, plus run telemetry. The handler
    /// receives `(submission index, job)` and must be pure per job —
    /// jobs run concurrently in unspecified order.
    ///
    /// This is the legacy all-or-nothing front over
    /// [`FleetServer::try_serve_with_stats`]: a failed job (panicked
    /// handler, blown deadline) re-raises as a panic on the submitting
    /// thread *after* the pool has drained — it still propagates, but it
    /// can no longer strand sibling jobs.
    pub fn serve_with_stats<J, R>(
        &self,
        jobs: Vec<J>,
        handler: impl Fn(usize, J) -> R + Sync,
    ) -> (Vec<R>, ServeStats)
    where
        J: Send,
        R: Send,
    {
        let (results, stats) = self.try_serve_with_stats(jobs, handler);
        let out = results
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(e) => panic!("fleet server job failed: {e}"),
            })
            .collect();
        (out, stats)
    }

    /// [`FleetServer::serve_with_stats`] without the telemetry.
    pub fn serve<J, R>(&self, jobs: Vec<J>, handler: impl Fn(usize, J) -> R + Sync) -> Vec<R>
    where
        J: Send,
        R: Send,
    {
        self.serve_with_stats(jobs, handler).0
    }

    /// Splits a batch of incoming per-fleet reports into scored
    /// admissions and rejections, applying [`Controller`]'s exact
    /// corrupt-report rule ([`Objective::score_report`]): empty or
    /// non-finite readings and wrong-arity vectors are rejected, never
    /// scored. Returns `(scored, rejected)` with submission indices
    /// preserved, so a server-side consumer can retry rejects the same
    /// way the event-stepped controller retries a lost probe.
    pub fn admit_reports(
        objective: &Objective,
        expected_devices: Option<usize>,
        reports: &[FleetReport],
    ) -> (Vec<(usize, f64)>, Vec<usize>) {
        let mut scored = Vec::new();
        let mut rejected = Vec::new();
        for (i, report) in reports.iter().enumerate() {
            match objective.score_report(expected_devices, report) {
                Some(score) => scored.push((i, score)),
                None => rejected.push(i),
            }
        }
        (scored, rejected)
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let server = FleetServer::new(3);
        let jobs: Vec<u64> = (0..40).collect();
        let (out, stats) = server.serve_with_stats(jobs, |idx, n| {
            // Stagger completion so out-of-order finishes are likely.
            std::thread::sleep(std::time::Duration::from_micros(((n * 7) % 11) * 50));
            (idx, n * n)
        });
        assert_eq!(out.len(), 40);
        for (i, (idx, sq)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*sq, (i as u64) * (i as u64));
        }
        assert_eq!(stats.completed, 40);
        assert_eq!(stats.shards, 3);
    }

    #[test]
    fn concurrent_results_match_serial_execution() {
        let work = |_: usize, seed: u64| {
            // A deterministic "optimization": xorshift walk.
            let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            for _ in 0..1000 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
            }
            s
        };
        let jobs: Vec<u64> = (0..16).collect();
        let serial: Vec<u64> = jobs.iter().map(|&j| work(0, j)).collect();
        let parallel = FleetServer::new(4).serve(jobs, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn shard_counts_do_not_change_results() {
        // The sharding contract: any shard count yields the identical
        // result vector (shard choice only moves work between deques).
        let work = |idx: usize, n: u64| (idx as u64).wrapping_mul(31).wrapping_add(n * n);
        let jobs: Vec<u64> = (0..50).collect();
        let reference = FleetServer::new(1).serve(jobs.clone(), work);
        for shards in [1usize, 2, 7, 50, 128] {
            let sharded = FleetServer::new(4)
                .with_shards(shards)
                .serve(jobs.clone(), work);
            assert_eq!(sharded, reference, "shards = {shards}");
        }
    }

    #[test]
    fn idle_workers_steal_from_loaded_shards() {
        // 2 workers homed on 2 shards, but every job hashed to a single
        // shard: worker 1 can only make progress by stealing, and the
        // run must still complete with the stats recording the steals.
        let server = FleetServer::new(2).with_shards(1);
        let (out, stats) = server.serve_with_stats((0..64u64).collect(), |_, n| {
            std::thread::sleep(std::time::Duration::from_micros(50));
            n + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<u64>>());
        // One shard, two workers: worker 1's home is shard 1 % 1 = 0 as
        // well, so no cross-shard steals here — now check a genuinely
        // imbalanced layout.
        assert_eq!(stats.shards, 1);
        let imbalanced = FleetServer::new(4).with_shards(2);
        let (out, stats) = imbalanced.serve_with_stats((0..64u64).collect(), |_, n| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            n
        });
        assert_eq!(out.len(), 64);
        // 4 workers over 2 shards: workers 2 and 3 share home shards
        // with 0 and 1; on a multi-core host steals are likely but not
        // guaranteed, so only assert the counter is consistent.
        assert!(stats.steals <= 64);
        assert!(stats.mean_queue_wait.0 >= 0.0);
    }

    #[test]
    fn shard_hash_spreads_indices() {
        // splitmix64 over sequential indices must not collapse onto one
        // shard (the failure mode of `index % shards` under strided
        // submission patterns).
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for idx in 0..800 {
            counts[shard_of(idx, shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 0, "shard {s} starved across 800 sequential indices");
        }
    }

    #[test]
    fn more_jobs_than_workers_all_complete() {
        let server = FleetServer::new(2);
        let (out, stats) = server.serve_with_stats((0..100u64).collect(), |_, n| n + 1);
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
        assert!(stats.workers_used >= 1 && stats.workers_used <= 2);
    }

    #[test]
    fn panicking_handler_propagates_instead_of_hanging() {
        // The all-or-nothing front re-raises a handler panic on the
        // submitting thread after the pool drains; sibling jobs are
        // never stranded mid-queue.
        let server = FleetServer::new(1);
        let result = std::panic::catch_unwind(|| {
            server.serve((0..10u64).collect(), |_, n| {
                if n == 1 {
                    panic!("handler died");
                }
                n
            })
        });
        assert!(result.is_err(), "the worker panic must propagate");
    }

    #[test]
    fn try_serve_isolates_a_panicking_job() {
        // The graceful-degradation contract: one poisoned job fails
        // alone. Every sibling still completes — even with a single
        // worker, which before panic isolation would have died on job 3
        // and stranded jobs 4..9.
        let server = FleetServer::new(1);
        let (out, stats) = server.try_serve_with_stats((0..10u64).collect(), |_, n| {
            if n == 3 {
                panic!("fleet {n} is poisoned");
            }
            n * 10
        });
        assert_eq!(out.len(), 10);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                match r {
                    Err(JobError::Panicked(msg)) => {
                        assert!(msg.contains("poisoned"), "{msg}")
                    }
                    other => panic!("job 3 must fail as Panicked, got {other:?}"),
                }
            } else {
                assert_eq!(*r, Ok(i as u64 * 10), "sibling job {i} must complete");
            }
        }
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 10);
    }

    #[test]
    fn deadline_exceeded_jobs_fail_without_stalling_siblings() {
        let server = FleetServer::new(2).with_deadline(Seconds(0.01));
        let (out, stats) = server.try_serve_with_stats((0..6u64).collect(), |_, n| {
            if n == 2 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            n
        });
        match &out[2] {
            Err(JobError::DeadlineExceeded { limit, took }) => {
                assert_eq!(*limit, Seconds(0.01));
                assert!(took.0 >= 0.01, "took {took:?}");
            }
            other => panic!("job 2 must blow the deadline, got {other:?}"),
        }
        for (i, r) in out.iter().enumerate() {
            if i != 2 {
                assert_eq!(*r, Ok(i as u64));
            }
        }
        assert_eq!(stats.failed, 1);
        // Error text carries both numbers for the logs.
        let msg = out[2].as_ref().unwrap_err().to_string();
        assert!(msg.contains("deadline exceeded"), "{msg}");
        assert!(msg.contains("10.0 ms budget"), "{msg}");
    }

    #[test]
    fn empty_job_list_is_a_clean_no_op() {
        let server = FleetServer::new(4);
        let (out, stats) = server.serve_with_stats(Vec::<u64>::new(), |_, n| n);
        assert!(out.is_empty());
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.mean_queue_wait, Seconds(0.0));
    }

    #[test]
    fn queue_wait_is_in_seconds_with_exact_percentiles() {
        // The unit contract: `mean_queue_wait` / `queue_wait_p50` /
        // `queue_wait_p95` are Seconds of stage-to-pop latency. Jobs
        // that sleep ~1 ms serially behind one worker accumulate waits
        // well under a second but well over a microsecond, and the
        // percentiles must be exact order statistics of the per-job
        // waits: p50 <= p95 <= ~max plausible wall time of the run.
        let server = FleetServer::new(1);
        let n = 8u64;
        let (_, stats) = server.serve_with_stats((0..n).collect(), |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(stats.mean_queue_wait.0 > 0.0);
        assert!(stats.mean_queue_wait.0 < 10.0, "seconds, not nanoseconds");
        assert!(stats.queue_wait_p50.0 <= stats.queue_wait_p95.0);
        // One worker drains serially: the last job waited at least the
        // summed sleep of its predecessors (n-1 ms), so p95 must exceed
        // the one-job sleep — a value only consistent with seconds.
        assert!(stats.queue_wait_p95.0 >= 0.001, "p95 = {stats:?}");
        assert!(stats.queue_wait_p95.0 < 10.0);
    }

    #[test]
    fn ring_recorder_sees_enqueue_and_complete_events() {
        use rfmath::telemetry::{RecorderHandle, RingRecorder, TelemetryEvent};
        use std::sync::Arc;

        let ring = Arc::new(RingRecorder::new(1024));
        let server = FleetServer::new(1)
            .with_shards(2)
            .with_recorder(RecorderHandle::new(ring.clone()));
        let out = server.serve((0..8u64).collect(), |_, n| n * 2);
        assert_eq!(out, (0..8u64).map(|n| n * 2).collect::<Vec<_>>());
        assert_eq!(ring.counter("server.jobs"), 8);
        let events = ring.events();
        let enqueued = events
            .iter()
            .filter(|(_, _, e)| matches!(e, TelemetryEvent::JobEnqueued { .. }))
            .count();
        let completed = events
            .iter()
            .filter(|(_, _, e)| matches!(e, TelemetryEvent::JobCompleted { ok: true, .. }))
            .count();
        assert_eq!(enqueued, 8);
        assert_eq!(completed, 8);
        // Single worker homed on shard 0 over 2 shards: every job on
        // shard 1 arrives via a steal, and the events agree with stats.
        let (_, stats) = server.serve_with_stats((0..8u64).collect(), |_, n| n);
        assert!(stats.steals > 0, "shard 1 can only drain by stealing");
    }

    #[test]
    fn report_admission_matches_the_controller_rule() {
        let reports = vec![
            FleetReport {
                at: Seconds(0.0),
                powers_dbm: vec![-40.0, -52.0],
            },
            FleetReport {
                at: Seconds(0.1),
                powers_dbm: vec![f64::NAN, -50.0],
            },
            FleetReport {
                at: Seconds(0.2),
                powers_dbm: vec![-45.0],
            },
            FleetReport {
                at: Seconds(0.3),
                powers_dbm: vec![],
            },
        ];
        let (scored, rejected) =
            FleetServer::admit_reports(&Objective::WorstLink, Some(2), &reports);
        // Only the first report is finite *and* full-arity.
        assert_eq!(scored, vec![(0, -52.0)]);
        assert_eq!(rejected, vec![1, 2, 3]);
        // Without an expected arity, the truncated report is scoreable —
        // same as the controller with `expected_devices: None`.
        let (scored, rejected) = FleetServer::admit_reports(&Objective::WorstLink, None, &reports);
        assert_eq!(scored, vec![(0, -52.0), (2, -45.0)]);
        assert_eq!(rejected, vec![1, 3]);
    }
}
