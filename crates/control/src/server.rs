//! Async many-fleet serving: one controller process, many fleets.
//!
//! The paper's controller drives *one* optimization at a time; ROADMAP's
//! fleet-serving item asks for the next scaling lever — a controller that
//! multiplexes many fleets (each its own device population behind its
//! own panel array) concurrently. [`FleetServer`] is that event loop,
//! built from the same primitives as the rest of the workspace:
//!
//! * a **bounded task queue** (mutex + condvars, no external channel or
//!   async runtime) that applies backpressure to the submitting side
//!   when every worker is busy and the queue is full;
//! * **`std::thread::scope` workers** (like `rfmath::par`) that pull
//!   jobs and run a caller-supplied handler — the handler is where a
//!   typed front (e.g. `llama_core`'s scheduler) plugs in a per-fleet
//!   optimization;
//! * **corrupt-report rejection inherited from [`Controller`]**: report
//!   ingest funnels through [`Objective::score_report`], the exact
//!   admission rule [`Controller::step_fleet`] applies, so a server-side
//!   consumer can never score a report the event-stepped controller
//!   would have rejected.
//!
//! Results come back in submission order and are bit-identical to
//! running the handler serially — workers share nothing but the queue,
//! so concurrency is purely an elapsed-time optimization.
//!
//! ```
//! use control::server::FleetServer;
//!
//! let server = FleetServer::new(4);
//! let squares = server.serve((0..16u64).collect(), |_, n| n * n);
//! assert_eq!(squares[5], 25);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use rfmath::units::Seconds;

use crate::controller::{FleetReport, Objective};

#[allow(unused_imports)] // rustdoc link target
use crate::controller::Controller;

/// A bounded multi-producer/multi-consumer job queue: `push` blocks when
/// `capacity` jobs are waiting, `pop` blocks until a job arrives or the
/// queue is closed and drained.
struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct QueueState<T> {
    jobs: VecDeque<T>,
    closed: bool,
    peak_depth: usize,
    /// Workers still able to drain the queue. A panicking handler
    /// unwinds its worker, which decrements this on the way out; `push`
    /// stops blocking once it hits zero so a full queue with no
    /// consumers left cannot deadlock the submitting thread (the panic
    /// then propagates normally through `std::thread::scope`).
    workers_alive: usize,
}

impl<T> BoundedQueue<T> {
    fn new(workers: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
                peak_depth: 0,
                workers_alive: workers,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues one job, blocking while the queue holds `capacity` jobs.
    /// Returns `false` — without enqueueing — once every worker has
    /// exited (a panicked handler): nothing can drain the queue, so the
    /// submitter must stop feeding and let the scope join propagate the
    /// panic.
    fn push(&self, capacity: usize, job: T) -> bool {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.jobs.len() >= capacity && state.workers_alive > 0 {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.workers_alive == 0 {
            return false;
        }
        state.jobs.push_back(job);
        state.peak_depth = state.peak_depth.max(state.jobs.len());
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// Records one worker's exit (normal or unwinding) and wakes a
    /// possibly-blocked submitter. Tolerates a poisoned mutex — this
    /// runs during panic unwinding.
    fn worker_exited(&self) {
        let mut state = match self.state.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.workers_alive -= 1;
        drop(state);
        self.not_full.notify_all();
    }

    /// Dequeues one job; `None` once the queue is closed and drained.
    fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Marks the queue closed and wakes every waiting worker.
    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    fn peak_depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").peak_depth
    }
}

/// Why one job of a [`FleetServer::try_serve_with_stats`] run failed.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The handler panicked; the worker caught the unwind, kept
    /// draining the queue, and recorded the panic payload here.
    Panicked(String),
    /// The handler finished, but only after blowing the server's
    /// per-job deadline — its result is discarded as stale (a fleet
    /// optimization that outlives its tick serves nobody).
    DeadlineExceeded {
        /// The configured per-job wall-clock budget.
        limit: Seconds,
        /// What the job actually took.
        took: Seconds,
    },
    /// The job never ran (the submitter stopped feeding a dead pool —
    /// only reachable through the legacy panic-propagation path).
    Abandoned,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "handler panicked: {msg}"),
            JobError::DeadlineExceeded { limit, took } => write!(
                f,
                "deadline exceeded: {:.1} ms against a {:.1} ms budget",
                took.0 * 1e3,
                limit.0 * 1e3
            ),
            JobError::Abandoned => write!(f, "job never ran"),
        }
    }
}

impl std::error::Error for JobError {}

/// Telemetry of one [`FleetServer::serve`] run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeStats {
    /// Jobs completed (always the submission count — the server never
    /// drops work).
    pub completed: usize,
    /// Jobs that came back as a [`JobError`] (panicked handler or a
    /// blown deadline).
    pub failed: usize,
    /// Deepest the bounded queue got; never exceeds the configured
    /// capacity (the backpressure contract).
    pub peak_queue_depth: usize,
    /// Workers that ran at least one job.
    pub workers_used: usize,
}

/// The async many-fleet controller front: a fixed worker pool pulling
/// per-fleet jobs off a bounded queue.
///
/// `FleetServer` is deliberately generic over the job type — the control
/// crate sits *below* the fleet model, so the typed integration
/// (`Fleet` in, `FleetOutcome` out) lives with the fleet types and plugs
/// in through the handler closure. What the server owns is the
/// scheduling contract: bounded admission, deterministic submission-order
/// results, and the shared report-admission rule.
#[derive(Clone, Copy, Debug)]
pub struct FleetServer {
    /// Worker threads pulling from the queue (≥ 1).
    pub workers: usize,
    /// Bounded queue capacity; submission blocks beyond this depth.
    pub queue_capacity: usize,
    /// Optional per-job wall-clock budget. A job whose handler runs
    /// longer comes back as [`JobError::DeadlineExceeded`] from
    /// [`FleetServer::try_serve_with_stats`] — the worker is never
    /// killed mid-job (cooperative model), but the stale result is
    /// discarded instead of served. `None` (the default) disables it.
    pub deadline: Option<Seconds>,
}

impl FleetServer {
    /// A server with `workers` threads and a queue twice as deep (a
    /// worker finishing always finds the next job staged).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            workers,
            queue_capacity: 2 * workers,
            deadline: None,
        }
    }

    /// Sets the per-job deadline.
    pub fn with_deadline(mut self, deadline: Seconds) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The fault-isolating serve: every job comes back as a
    /// `Result<R, JobError>` in submission order. A panicking handler is
    /// caught *inside* its worker — the worker records the failure for
    /// that one job and keeps draining the queue, so one poisoned fleet
    /// cannot take down its siblings or deadlock the submitter. With a
    /// [`deadline`](FleetServer::deadline) set, a job whose handler
    /// outruns the budget is failed as stale.
    pub fn try_serve_with_stats<J, R>(
        &self,
        jobs: Vec<J>,
        handler: impl Fn(usize, J) -> R + Sync,
    ) -> (Vec<Result<R, JobError>>, ServeStats)
    where
        J: Send,
        R: Send,
    {
        let n = jobs.len();
        let capacity = self.queue_capacity.max(1);
        let workers = self.workers.max(1).min(n.max(1));
        let deadline = self.deadline;
        let queue: BoundedQueue<(usize, J)> = BoundedQueue::new(workers);
        let results: Vec<Mutex<Option<Result<R, JobError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let used = Mutex::new(0usize);

        /// Decrements the live-worker count when its worker exits —
        /// including by unwinding out of a panicked handler, so a
        /// blocked submitter always wakes up instead of deadlocking.
        struct WorkerExitGuard<'q, T>(&'q BoundedQueue<T>);
        impl<T> Drop for WorkerExitGuard<'_, T> {
            fn drop(&mut self) {
                self.0.worker_exited();
            }
        }

        std::thread::scope(|scope| {
            let queue = &queue;
            let results = &results;
            let handler = &handler;
            let used = &used;
            for _ in 0..workers {
                scope.spawn(move || {
                    let _guard = WorkerExitGuard(queue);
                    let mut ran_any = false;
                    while let Some((idx, job)) = queue.pop() {
                        ran_any = true;
                        let started = Instant::now();
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| handler(idx, job)));
                        let took = Seconds(started.elapsed().as_secs_f64());
                        let entry = match out {
                            Ok(result) => match deadline {
                                Some(limit) if took.0 > limit.0 => {
                                    Err(JobError::DeadlineExceeded { limit, took })
                                }
                                _ => Ok(result),
                            },
                            Err(payload) => Err(JobError::Panicked(panic_message(&*payload))),
                        };
                        let mut slot = match results[idx].lock() {
                            Ok(slot) => slot,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        *slot = Some(entry);
                    }
                    if ran_any {
                        *used.lock().expect("counter poisoned") += 1;
                    }
                });
            }
            // The submitting side is this thread: feed jobs through the
            // bounded queue (blocking when it is full — backpressure),
            // then close it so idle workers drain out. A `false` push
            // means every worker died — unreachable now that panics are
            // caught in the job loop, but kept as belt-and-braces.
            for (idx, job) in jobs.into_iter().enumerate() {
                if !queue.push(capacity, (idx, job)) {
                    break;
                }
            }
            queue.close();
        });

        let out: Vec<Result<R, JobError>> = results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .unwrap_or(Err(JobError::Abandoned))
            })
            .collect();
        let stats = ServeStats {
            completed: n,
            failed: out.iter().filter(|r| r.is_err()).count(),
            peak_queue_depth: queue.peak_depth(),
            workers_used: *used.lock().expect("counter poisoned"),
        };
        (out, stats)
    }

    /// Runs every job through `handler` on the worker pool and returns
    /// the results in submission order, plus run telemetry. The handler
    /// receives `(submission index, job)` and must be pure per job —
    /// jobs run concurrently in unspecified order.
    ///
    /// This is the legacy all-or-nothing front over
    /// [`FleetServer::try_serve_with_stats`]: a failed job (panicked
    /// handler, blown deadline) re-raises as a panic on the submitting
    /// thread *after* the pool has drained — it still propagates, but it
    /// can no longer hang submitters or strand sibling jobs.
    pub fn serve_with_stats<J, R>(
        &self,
        jobs: Vec<J>,
        handler: impl Fn(usize, J) -> R + Sync,
    ) -> (Vec<R>, ServeStats)
    where
        J: Send,
        R: Send,
    {
        let (results, stats) = self.try_serve_with_stats(jobs, handler);
        let out = results
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(e) => panic!("fleet server job failed: {e}"),
            })
            .collect();
        (out, stats)
    }

    /// [`FleetServer::serve_with_stats`] without the telemetry.
    pub fn serve<J, R>(&self, jobs: Vec<J>, handler: impl Fn(usize, J) -> R + Sync) -> Vec<R>
    where
        J: Send,
        R: Send,
    {
        self.serve_with_stats(jobs, handler).0
    }

    /// Splits a batch of incoming per-fleet reports into scored
    /// admissions and rejections, applying [`Controller`]'s exact
    /// corrupt-report rule ([`Objective::score_report`]): empty or
    /// non-finite readings and wrong-arity vectors are rejected, never
    /// scored. Returns `(scored, rejected)` with submission indices
    /// preserved, so a server-side consumer can retry rejects the same
    /// way the event-stepped controller retries a lost probe.
    pub fn admit_reports(
        objective: &Objective,
        expected_devices: Option<usize>,
        reports: &[FleetReport],
    ) -> (Vec<(usize, f64)>, Vec<usize>) {
        let mut scored = Vec::new();
        let mut rejected = Vec::new();
        for (i, report) in reports.iter().enumerate() {
            match objective.score_report(expected_devices, report) {
                Some(score) => scored.push((i, score)),
                None => rejected.push(i),
            }
        }
        (scored, rejected)
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let server = FleetServer::new(3);
        let jobs: Vec<u64> = (0..40).collect();
        let (out, stats) = server.serve_with_stats(jobs, |idx, n| {
            // Stagger completion so out-of-order finishes are likely.
            std::thread::sleep(std::time::Duration::from_micros(((n * 7) % 11) * 50));
            (idx, n * n)
        });
        assert_eq!(out.len(), 40);
        for (i, (idx, sq)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*sq, (i as u64) * (i as u64));
        }
        assert_eq!(stats.completed, 40);
    }

    #[test]
    fn concurrent_results_match_serial_execution() {
        let work = |_: usize, seed: u64| {
            // A deterministic "optimization": xorshift walk.
            let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            for _ in 0..1000 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
            }
            s
        };
        let jobs: Vec<u64> = (0..16).collect();
        let serial: Vec<u64> = jobs.iter().map(|&j| work(0, j)).collect();
        let parallel = FleetServer::new(4).serve(jobs, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn queue_depth_respects_the_bound() {
        let mut server = FleetServer::new(2);
        server.queue_capacity = 3;
        let (_, stats) = server.serve_with_stats((0..50u64).collect(), |_, n| {
            std::thread::sleep(std::time::Duration::from_micros(100));
            n
        });
        assert!(
            stats.peak_queue_depth <= 3,
            "bounded queue overflowed: depth {}",
            stats.peak_queue_depth
        );
        assert_eq!(stats.completed, 50);
    }

    #[test]
    fn more_jobs_than_workers_all_complete() {
        let server = FleetServer::new(2);
        let (out, stats) = server.serve_with_stats((0..100u64).collect(), |_, n| n + 1);
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
        assert!(stats.workers_used >= 1 && stats.workers_used <= 2);
    }

    #[test]
    fn panicking_handler_propagates_instead_of_hanging() {
        // One worker, tiny queue, many jobs: the handler panic kills the
        // only consumer while the submitter is still feeding. The exit
        // guard must wake the submitter so the scope join re-raises the
        // panic — before the fix this deadlocked in `push`.
        let mut server = FleetServer::new(1);
        server.queue_capacity = 2;
        let result = std::panic::catch_unwind(|| {
            server.serve((0..10u64).collect(), |_, n| {
                if n == 1 {
                    panic!("handler died");
                }
                n
            })
        });
        assert!(result.is_err(), "the worker panic must propagate");
    }

    #[test]
    fn try_serve_isolates_a_panicking_job() {
        // The graceful-degradation contract: one poisoned job fails
        // alone. Every sibling still completes — even with a single
        // worker, which before panic isolation would have died on job 3
        // and stranded jobs 4..9.
        let mut server = FleetServer::new(1);
        server.queue_capacity = 2;
        let (out, stats) = server.try_serve_with_stats((0..10u64).collect(), |_, n| {
            if n == 3 {
                panic!("fleet {n} is poisoned");
            }
            n * 10
        });
        assert_eq!(out.len(), 10);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                match r {
                    Err(JobError::Panicked(msg)) => {
                        assert!(msg.contains("poisoned"), "{msg}")
                    }
                    other => panic!("job 3 must fail as Panicked, got {other:?}"),
                }
            } else {
                assert_eq!(*r, Ok(i as u64 * 10), "sibling job {i} must complete");
            }
        }
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 10);
    }

    #[test]
    fn deadline_exceeded_jobs_fail_without_stalling_siblings() {
        let server = FleetServer::new(2).with_deadline(Seconds(0.01));
        let (out, stats) = server.try_serve_with_stats((0..6u64).collect(), |_, n| {
            if n == 2 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            n
        });
        match &out[2] {
            Err(JobError::DeadlineExceeded { limit, took }) => {
                assert_eq!(*limit, Seconds(0.01));
                assert!(took.0 >= 0.01, "took {took:?}");
            }
            other => panic!("job 2 must blow the deadline, got {other:?}"),
        }
        for (i, r) in out.iter().enumerate() {
            if i != 2 {
                assert_eq!(*r, Ok(i as u64));
            }
        }
        assert_eq!(stats.failed, 1);
        // Error text carries both numbers for the logs.
        let msg = out[2].as_ref().unwrap_err().to_string();
        assert!(msg.contains("deadline exceeded"), "{msg}");
        assert!(msg.contains("10.0 ms budget"), "{msg}");
    }

    #[test]
    fn empty_job_list_is_a_clean_no_op() {
        let server = FleetServer::new(4);
        let (out, stats) = server.serve_with_stats(Vec::<u64>::new(), |_, n| n);
        assert!(out.is_empty());
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.peak_queue_depth, 0);
    }

    #[test]
    fn report_admission_matches_the_controller_rule() {
        let reports = vec![
            FleetReport {
                at: Seconds(0.0),
                powers_dbm: vec![-40.0, -52.0],
            },
            FleetReport {
                at: Seconds(0.1),
                powers_dbm: vec![f64::NAN, -50.0],
            },
            FleetReport {
                at: Seconds(0.2),
                powers_dbm: vec![-45.0],
            },
            FleetReport {
                at: Seconds(0.3),
                powers_dbm: vec![],
            },
        ];
        let (scored, rejected) =
            FleetServer::admit_reports(&Objective::WorstLink, Some(2), &reports);
        // Only the first report is finite *and* full-arity.
        assert_eq!(scored, vec![(0, -52.0)]);
        assert_eq!(rejected, vec![1, 2, 3]);
        // Without an expected arity, the truncated report is scoreable —
        // same as the controller with `expected_devices: None`.
        let (scored, rejected) = FleetServer::admit_reports(&Objective::WorstLink, None, &reports);
        assert_eq!(scored, vec![(0, -52.0), (2, -45.0)]);
        assert_eq!(rejected, vec![1, 3]);
    }
}
