//! Offline drop-in shim for the subset of the [`criterion`] crate API
//! this workspace's benches use.
//!
//! The build environment cannot reach a cargo registry, so the
//! `harness = false` benches compile against this minimal local
//! implementation: [`Criterion`], [`BenchmarkGroup`] with
//! `warm_up_time`/`measurement_time`/`sample_size`/`bench_function`,
//! [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timing is a simple mean-of-samples wall-clock measurement — good
//! enough to compare runs on one machine, with none of the real crate's
//! statistics. The group's warm-up and measurement windows are honored
//! as *budgets* (each sample stops early once the window is spent) so
//! `cargo bench` terminates promptly even for slow figure sweeps.
//!
//! ```
//! use criterion::{Criterion, black_box};
//!
//! let mut c = Criterion::default();
//! let mut g = c.benchmark_group("example");
//! g.sample_size(10);
//! g.bench_function("square", |b| b.iter(|| black_box(21u64) * 2));
//! g.finish();
//! ```

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-iteration measurement driver handed to bench closures.
pub struct Bencher {
    samples: u64,
    warm_up: Duration,
    budget: Duration,
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over this group's sample budget and records the
    /// mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Untimed warm-up: at least one call, then keep going until the
        // group's warm-up window is spent (caches hot, lazy setup done).
        let warm_started = Instant::now();
        loop {
            black_box(routine());
            if warm_started.elapsed() >= self.warm_up {
                break;
            }
        }
        let started = Instant::now();
        let mut done: u64 = 0;
        while done < self.samples {
            black_box(routine());
            done += 1;
            if started.elapsed() > self.budget {
                break;
            }
        }
        self.last_mean = Some(started.elapsed() / done.max(1) as u32);
    }
}

/// A named collection of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: &'a mut Config,
}

#[derive(Clone, Debug)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
            sample_size: 100,
        }
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up window (accepted for API compatibility).
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.config.warm_up_time = time;
        self
    }

    /// Sets the measurement budget for each benchmark in the group.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.config.measurement_time = time;
        self
    }

    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n as u64;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<I: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.config.sample_size,
            warm_up: self.config.warm_up_time,
            budget: self.config.measurement_time,
            last_mean: None,
        };
        f(&mut bencher);
        match bencher.last_mean {
            Some(mean) => println!(
                "{}/{id}: mean {:.3} ms/iter",
                self.name,
                mean.as_secs_f64() * 1e3
            ),
            None => println!("{}/{id}: no measurement recorded", self.name),
        }
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        // Each group starts from the default configuration, like the
        // real crate (group settings don't leak between groups).
        self.config = Config::default();
        BenchmarkGroup {
            name: name.to_string(),
            config: &mut self.config,
        }
    }

    /// Runs one stand-alone named benchmark with default settings.
    pub fn bench_function<I: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.config = Config::default();
        let mut group = BenchmarkGroup {
            name: id.into(),
            config: &mut self.config,
        };
        group.bench_function("bench", f);
        self
    }
}

/// Declares a group-runner function over one or more bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        g.sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
