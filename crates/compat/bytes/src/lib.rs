//! Offline drop-in shim for the subset of the [`bytes`] crate API this
//! workspace uses.
//!
//! The build environment cannot reach a cargo registry, so the wire
//! codec in `devices::report` compiles against this minimal local
//! implementation instead: [`Bytes`] (cheaply cloneable shared buffer
//! with a read cursor), [`BytesMut`] (growable builder), and the
//! big-endian [`Buf`]/[`BufMut`] accessor traits.
//!
//! ```
//! use bytes::{Buf, BufMut, BytesMut};
//!
//! let mut buf = BytesMut::with_capacity(8);
//! buf.put_u16(0x4C4D);
//! buf.put_u32(7);
//! let mut frozen = buf.freeze();
//! assert_eq!(frozen.len(), 6);
//! assert_eq!(frozen.get_u16(), 0x4C4D);
//! assert_eq!(frozen.get_u32(), 7);
//! assert!(frozen.is_empty());
//! ```

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable byte buffer with a read
/// cursor (advanced by the [`Buf`] accessors).
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a view of `range` (relative to the current position) as
    /// a new `Bytes` sharing the same backing storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && self.start + range.end <= self.end,
            "slice out of bounds: {range:?} of {}",
            self.len()
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "advance past end of buffer");
        let out = &self.data[self.start..self.start + n];
        self.start += n;
        out
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        Self {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        v.to_vec().into()
    }
}

/// A growable byte buffer for building messages.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        Self { data: v.to_vec() }
    }
}

/// Big-endian read accessors that advance a cursor.
pub trait Buf {
    /// Reads one `u8` and advances.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u16` and advances.
    fn get_u16(&mut self) -> u16;
    /// Reads a big-endian `u32` and advances.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64` and advances.
    fn get_u64(&mut self) -> u64;
    /// Reads a big-endian `i16` and advances.
    fn get_i16(&mut self) -> i16 {
        self.get_u16() as i16
    }
}

impl Buf for Bytes {
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

/// Big-endian write accessors.
pub trait BufMut {
    /// Appends one `u8`.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_u16(v as u16);
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::with_capacity(17);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        b.put_i16(-2);
        let mut f = b.freeze();
        assert_eq!(f.len(), 17);
        assert_eq!(f.get_u8(), 0xAB);
        assert_eq!(f.get_u16(), 0x1234);
        assert_eq!(f.get_u32(), 0xDEAD_BEEF);
        assert_eq!(f.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(f.get_i16(), -2);
        assert!(f.is_empty());
    }

    #[test]
    fn slice_is_independent_of_cursor() {
        let mut f = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = f.slice(0..3);
        let _ = f.get_u16();
        assert_eq!(&head[..], &[1, 2, 3]);
        assert_eq!(&f[..], &[3, 4, 5]);
    }

    #[test]
    fn bytes_mut_is_indexable() {
        let mut b = BytesMut::from(&[9u8, 8, 7][..]);
        b[1] ^= 0xFF;
        assert_eq!(&b[..], &[9, 0xF7, 7]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn reading_past_end_panics() {
        let mut f = Bytes::from(vec![1]);
        let _ = f.get_u16();
    }
}
