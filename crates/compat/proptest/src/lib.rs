//! Offline drop-in shim for the subset of the [`proptest`] crate API
//! this workspace uses.
//!
//! The build environment cannot reach a cargo registry, so the
//! property-based test suites compile against this minimal local
//! implementation: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`boxed`, range and tuple strategies, [`any`],
//! [`collection::vec`], [`prop_oneof!`], and the
//! [`prop_assert!`]/[`prop_assume!`] result plumbing.
//!
//! Unlike the real proptest there is no shrinking: sampling is plain
//! uniform draws from a deterministic per-test RNG (seeded from the
//! test name), so failures reproduce exactly on re-run.
//!
//! ```
//! use proptest::prelude::*;
//!
//! // The `proptest!` macro wraps this plumbing in `#[test]` functions;
//! // the runner itself samples a strategy until the config's case count
//! // is met, treating `Err(Reject)` as a filtered input.
//! let doubled = (0.0f64..100.0).prop_map(|x| x * 2.0);
//! proptest::run_proptest(
//!     &ProptestConfig::with_cases(64),
//!     "doubling_stays_in_range",
//!     |rng| {
//!         let x = Strategy::sample(&doubled, rng);
//!         prop_assert!((0.0..200.0).contains(&x), "x = {x}");
//!         Ok(())
//!     },
//! );
//! ```

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng, StandardSample};

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case hit a failed `prop_assert!`.
    Fail(String),
    /// The case was vetoed by `prop_assume!` and should not count.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection (filtered input).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration; `ProptestConfig::with_cases(n)` mirrors the
/// real crate.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy so differently-typed strategies can be
    /// mixed (e.g. by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// String strategies from a small regex subset (the real crate accepts
/// any regex; this shim covers literals, `.`, character classes with
/// ranges, and the `{m}`/`{m,n}`/`*`/`+`/`?` quantifiers — enough for
/// the patterns used in this workspace, e.g. `"[ -~]{0,40}"`).
mod pattern {
    use super::TestRng;
    use rand::Rng;

    pub(super) struct Piece {
        /// Inclusive character ranges to draw from.
        ranges: Vec<(char, char)>,
        min: usize,
        max: usize,
    }

    /// Unbounded quantifiers (`*`, `+`, `{m,}`) are capped here; tests
    /// that need longer strings should use an explicit `{m,n}`.
    const UNBOUNDED_CAP: usize = 16;

    pub(super) fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let ranges = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    let mut class: Vec<char> = Vec::new();
                    for d in chars.by_ref() {
                        if d == ']' {
                            break;
                        }
                        class.push(d);
                    }
                    let mut i = 0;
                    while i < class.len() {
                        if i + 2 < class.len() && class[i + 1] == '-' {
                            ranges.push((class[i], class[i + 2]));
                            i += 3;
                        } else if i + 2 == class.len() && class[i + 1] == '-' {
                            // Trailing '-' after a range start: literal.
                            ranges.push((class[i], class[i]));
                            ranges.push(('-', '-'));
                            i += 2;
                        } else {
                            ranges.push((class[i], class[i]));
                            i += 1;
                        }
                    }
                    ranges
                }
                '.' => vec![(' ', '~')],
                '\\' => {
                    let d = chars.next().expect("dangling escape in pattern");
                    match d {
                        'd' => vec![('0', '9')],
                        'w' => vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                        's' => vec![(' ', ' '), ('\t', '\t')],
                        other => vec![(other, other)],
                    }
                }
                other => vec![(other, other)],
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for d in chars.by_ref() {
                        if d == '}' {
                            break;
                        }
                        spec.push(d);
                    }
                    match spec.split_once(',') {
                        Some((m, "")) => {
                            let m = m.parse().expect("bad {m,} in pattern");
                            (m, m + UNBOUNDED_CAP)
                        }
                        Some((m, n)) => (
                            m.parse().expect("bad {m,n} in pattern"),
                            n.parse().expect("bad {m,n} in pattern"),
                        ),
                        None => {
                            let n = spec.parse().expect("bad {n} in pattern");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, UNBOUNDED_CAP)
                }
                Some('+') => {
                    chars.next();
                    (1, UNBOUNDED_CAP)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { ranges, min, max });
        }
        pieces
    }

    pub(super) fn sample(pieces: &[Piece], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in pieces {
            let n = rng.gen_range(piece.min..=piece.max);
            let total: u32 = piece
                .ranges
                .iter()
                .map(|&(a, b)| b as u32 - a as u32 + 1)
                .sum();
            for _ in 0..n {
                let mut pick = rng.gen_range(0..total);
                for &(a, b) in &piece.ranges {
                    let span = b as u32 - a as u32 + 1;
                    if pick < span {
                        out.push(char::from_u32(a as u32 + pick).expect("valid char"));
                        break;
                    }
                    pick -= span;
                }
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        pattern::sample(&pattern::parse(self), rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: StandardSample> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy over the full domain of `T` (uniform for integers and
/// `[0, 1)` for floats, matching the shimmed `rand` semantics).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy choosing uniformly among type-erased alternatives; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start + 1 == self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// FNV-1a over the test name: a stable per-test seed so failures
/// reproduce deterministically.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: repeatedly samples inputs and runs the case
/// until `cfg.cases` successes, panicking on the first failure.
/// Used by the expansion of [`proptest!`]; not part of the public API
/// of the real crate.
pub fn run_proptest(
    cfg: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::seed_from_u64(seed_for(name) ^ 0x4C4C_414D_4121_2121);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    while passed < cfg.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < cfg.max_global_rejects,
                    "{name}: too many prop_assume! rejections ({rejected}) \
                     after {passed} passing cases"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {passed} failed: {msg}");
            }
        }
    }
}

/// Defines property-based tests: each `fn name(arg in strategy, ..)`
/// becomes a `#[test]` that samples inputs and checks the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!({$cfg} $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!({$crate::ProptestConfig::default()} $($rest)*);
    };
}

/// Internal recursion for [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ({$cfg:expr}) => {};
    ({$cfg:expr}
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                let case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
        $crate::__proptest_impl!({$cfg} $($rest)*);
    };
}

/// Non-fatal assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({l:?} vs {r:?})",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {l:?})",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Discards the current case when `cond` is false (filtered input).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Strategy choosing among alternatives (uniformly; the real crate's
/// weighted `w => strategy` arms are not supported by this shim).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3.0f64..9.0, n in 1usize..5) {
            prop_assert!((3.0..9.0).contains(&x));
            prop_assert!((1..5).contains(&n), "n = {n}");
        }

        #[test]
        fn assume_filters(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn config_is_honored(_x in 0u8..=255) {
            // Counting happens in the runner; the body just passes.
        }
    }

    proptest! {
        #[test]
        fn regex_subset_strategy(line in "[ -~]{0,40}", word in "AB[0-9]\\d{2,4}x?") {
            prop_assert!(line.len() <= 40);
            prop_assert!(line.chars().all(|c| (' '..='~').contains(&c)));
            prop_assert!(word.starts_with('A') && word.as_bytes()[1] == b'B');
            let digits = &word[2..].trim_end_matches('x');
            prop_assert!((3..=5).contains(&digits.len()), "digits: {digits:?}");
            prop_assert!(digits.bytes().all(|b| b.is_ascii_digit()));
        }
    }

    #[test]
    fn oneof_map_vec_and_any_compose() {
        let strat = prop::collection::vec(
            prop_oneof![(0.0f64..1.0).prop_map(|x| x * 2.0), Just(5.0f64),],
            2..6,
        );
        let mut rng = crate::TestRng::seed_from_u64(9);
        for _ in 0..100 {
            let v = crate::Strategy::sample(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| (0.0..2.0).contains(&x) || x == 5.0));
        }
        let w: u32 = crate::Strategy::sample(&any::<u32>(), &mut rng);
        let _ = w;
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failures_panic_with_message() {
        crate::run_proptest(&ProptestConfig::with_cases(10), "always_fails", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
