//! Offline drop-in shim for the subset of the [`rand`] crate API this
//! workspace uses.
//!
//! The build environment has no network access to a cargo registry, so
//! instead of the real `rand` crate the workspace compiles this minimal,
//! dependency-free implementation. It provides:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded
//!   via SplitMix64 (`seed_from_u64` semantics),
//! * `gen::<T>()` for the primitive types the simulator draws, and
//! * `gen_range` over half-open and inclusive integer/float ranges.
//!
//! Determinism is the whole point: every simulation stream in the
//! workspace is seeded explicitly, so a stable, portable generator makes
//! experiments reproducible across machines.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! let x: f64 = a.gen();
//! assert!((0.0..1.0).contains(&x));
//! assert!((3..9).contains(&a.gen_range(3..9)));
//! ```

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion,
    /// matching the semantics of `rand::SeedableRng::seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable "from the standard distribution" via [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u16 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardSample for u8 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for i64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for i32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)` (or `[low, high]` when
    /// `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                let span = span as u128;
                // Multiply-shift uniform map; bias is < 2^-64, far below
                // anything the simulator's statistics could resolve.
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    low < high || (inclusive && low == high),
                    "cannot sample from empty range"
                );
                let unit = f64::standard_sample(rng) as $t;
                let value = low + (high - low) * unit;
                if value >= high && !inclusive {
                    low
                } else {
                    value
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_uniform(rng, low, high, true)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Not cryptographic — this is a simulation RNG.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            Self {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..9);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(0u8..=7);
            assert!(j <= 7);
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u = rng.gen_range(0..1usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_every_bucket() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
