//! Varactor-loaded tunable phase shifter.
//!
//! The birefringent structure's per-axis behaviour is a coupled-resonator
//! *band-pass* surface: each phase-shifting layer is a printed sheet that
//! behaves as a **parallel** LC tank shunted across the wave path — at
//! tank resonance the sheet draws no current and is transparent; pulling
//! the resonance with the varactor bias changes the residual sheet
//! susceptance and therefore the transmission phase. Two such layers
//! separated by an air gap (which acts as an impedance inverter, exactly
//! like a coupled-resonator filter) form the paper's two-layer phase
//! shifter; this is the `δ` knob of Eq. (7)/(8).
//!
//! The module also implements the paper's Eq. (12) bandwidth law for a
//! phase shifter whose transmission-line section is `λ/m` long, which
//! motivates the two-layer design choice (§3.2): bandwidth grows roughly
//! linearly with line length.

use rfmath::complex::Complex;
use rfmath::units::{Farads, Henries, Hertz, Meters, Ohms, Radians, Volts};

use crate::lumped::{capacitor, inductor};
use crate::substrate::{Slab, ETA0};
use crate::twoport::{Abcd, SParams};
use crate::varactor::Varactor;

/// One tunable phase-shifting layer: a printed sheet modelled as a
/// parallel LC tank (sheet inductance ‖ varactor-tuned capacitance)
/// shunted across the wave path, printed on a substrate slab.
#[derive(Clone, Debug)]
pub struct LoadedStage {
    /// Sheet (pattern) inductance of the tank's inductive leg.
    pub tank_inductance: Henries,
    /// Fixed coupling capacitance in series with the varactor. This is
    /// the gap capacitance between the printed pattern and the diode
    /// pads; it levers the diode's 0.84–2.41 pF down to sheet scale.
    pub coupling_capacitance: Farads,
    /// The tuning diode.
    pub varactor: Varactor,
    /// Resistive loss of the printed pattern (per leg).
    pub pattern_resistance: Ohms,
    /// The board the pattern is printed on.
    pub slab: Slab,
}

impl LoadedStage {
    /// Effective tank capacitance at `bias`: the varactor in series with
    /// the fixed coupling capacitance.
    pub fn effective_capacitance(&self, bias: Volts) -> Farads {
        let cd = self.varactor.capacitance(bias);
        let cc = self.coupling_capacitance;
        Farads(cd.0 * cc.0 / (cd.0 + cc.0))
    }

    /// Tank (sheet) admittance at frequency `f` and bias `v`.
    ///
    /// Inductive leg: `R + jωL`; capacitive leg: `R + Rs + 1/(jωC_eff)`.
    pub fn sheet_admittance(&self, f: Hertz, bias: Volts) -> Complex {
        let z_l = Complex::real(self.pattern_resistance.0) + inductor(self.tank_inductance, f);
        let z_c = Complex::real(self.pattern_resistance.0 + self.varactor.rs.0)
            + capacitor(self.effective_capacitance(bias), f);
        z_l.inv() + z_c.inv()
    }

    /// The bias at which the sheet resonates (is transparent) at `f`,
    /// found by scanning the working bias range; `None` if resonance
    /// never crosses inside the range.
    pub fn resonant_bias(&self, f: Hertz) -> Option<Volts> {
        let b_of = |v: f64| self.sheet_admittance(f, Volts(v)).im;
        let (mut lo, mut hi) = (0.0, self.varactor.v_max.0);
        let (blo, bhi) = (b_of(lo), b_of(hi));
        if blo.signum() == bhi.signum() {
            return None;
        }
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if b_of(mid).signum() == blo.signum() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(Volts(0.5 * (lo + hi)))
    }

    /// ABCD of the stage at frequency `f` and bias `v`: half the slab,
    /// the shunt sheet, then the other half of the slab.
    pub fn abcd(&self, f: Hertz, bias: Volts) -> Abcd {
        let half = Slab::new(
            self.slab.material.clone(),
            Meters(self.slab.thickness.0 / 2.0),
        );
        let y = self.sheet_admittance(f, bias);
        Abcd::slab(&half, f)
            .then(Abcd::shunt(y))
            .then(Abcd::slab(&half, f))
    }
}

/// A multi-layer loaded phase shifter with air gaps between layers.
#[derive(Clone, Debug)]
pub struct PhaseShifter {
    /// The phase-shifting layers, in traversal order.
    pub stages: Vec<LoadedStage>,
    /// Air spacing between consecutive layers (≈ λ/4 acts as an
    /// impedance inverter, flattening the passband).
    pub spacing: Meters,
}

impl PhaseShifter {
    /// ABCD of the full shifter at `f` with every layer at bias `v`.
    pub fn abcd(&self, f: Hertz, bias: Volts) -> Abcd {
        let mut sections = Vec::with_capacity(self.stages.len() * 2);
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                sections.push(Abcd::air_gap(self.spacing, f));
            }
            sections.push(stage.abcd(f, bias));
        }
        Abcd::chain(&sections)
    }

    /// S-parameters referenced to free space.
    pub fn s_params(&self, f: Hertz, bias: Volts) -> SParams {
        self.abcd(f, bias).to_s(ETA0)
    }

    /// Transmission phase `∠S21` at `f` and bias `v`, radians.
    pub fn transmission_phase(&self, f: Hertz, bias: Volts) -> Radians {
        Radians(self.s_params(f, bias).transmission_phase())
    }

    /// Transmission efficiency `|S21|²` in dB.
    pub fn efficiency_db(&self, f: Hertz, bias: Volts) -> f64 {
        self.s_params(f, bias).transmission_efficiency_db().0
    }

    /// Differential phase between two bias settings at `f` — the raw
    /// material for the rotator's `δ`.
    pub fn phase_swing(&self, f: Hertz, bias_lo: Volts, bias_hi: Volts) -> Radians {
        let lo = self.transmission_phase(f, bias_lo).0;
        let hi = self.transmission_phase(f, bias_hi).0;
        Radians(wrap_phase(hi - lo))
    }
}

/// Wraps a phase difference into `(-π, π]`.
pub fn wrap_phase(p: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let mut r = p.rem_euclid(tau);
    if r > std::f64::consts::PI {
        r -= tau;
    }
    r
}

/// Eq. (12): bandwidth of a transmission-line phase shifter whose line
/// section is `λ/m` long.
///
/// `Δf = f0·(2 − (m/π)·arccos[ Γm/√(1−Γm²) · 2√(Z0·ZL)/|ZL−Z0| ])`
///
/// `gamma_max` is the maximum tolerable reflection coefficient magnitude,
/// `z0`/`zl` the input and load impedances. Returns the absolute
/// bandwidth around `f0`, clamped to `[0, 2·f0]`.
///
/// The design consequence the paper draws from this law (§3.2): the
/// bandwidth grows approximately linearly with the *length* of the line
/// (smaller `m`), which is why LLAMA uses **two** phase-shifting layers —
/// doubling the effective line length widens the band beyond the 100 MHz
/// ISM requirement (the paper reports 150 MHz at better than −5 dB).
///
/// When the matching term saturates (|arg| ≥ 1 or `ZL == Z0`), the line
/// imposes no band limit and the full `2·f0` span is returned.
pub fn line_bandwidth(f0: Hertz, m: f64, gamma_max: f64, z0: Ohms, zl: Ohms) -> Hertz {
    assert!(m > 0.0, "line fraction m must be positive");
    assert!((0.0..1.0).contains(&gamma_max), "Γ must be in [0, 1)");
    let dz = (zl.0 - z0.0).abs();
    if dz < 1e-12 {
        return Hertz(2.0 * f0.0);
    }
    let arg = gamma_max / (1.0 - gamma_max * gamma_max).sqrt() * 2.0 * (z0.0 * zl.0).sqrt() / dz;
    if arg >= 1.0 {
        return Hertz(2.0 * f0.0);
    }
    Hertz((f0.0 * (2.0 - m / std::f64::consts::PI * arg.acos())).clamp(0.0, 2.0 * f0.0))
}

/// Complex reflection coefficient of a load `zl` against reference `z0`.
pub fn reflection_coefficient(zl: Complex, z0: f64) -> Complex {
    (zl - z0) / (zl + z0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::Material;

    /// A representative tunable layer: tank resonance sits inside the
    /// working band near mid-bias, so the sheet is nearly transparent and
    /// the bias pulls the transmission phase through the passband.
    fn test_stage() -> LoadedStage {
        LoadedStage {
            tank_inductance: Henries::from_nh(7.3),
            coupling_capacitance: Farads::from_pf(1.0),
            varactor: Varactor::smv1233(),
            pattern_resistance: Ohms(0.6),
            slab: Slab::from_mm(Material::FR4, 0.8),
        }
    }

    fn test_shifter(n: usize) -> PhaseShifter {
        PhaseShifter {
            stages: (0..n).map(|_| test_stage()).collect(),
            spacing: Meters::from_mm(30.0),
        }
    }

    const F: Hertz = Hertz(2.44e9);

    #[test]
    fn sheet_is_nearly_transparent_at_resonance() {
        let stage = test_stage();
        let v0 = stage.resonant_bias(F).expect("resonance inside range");
        let ps = PhaseShifter {
            stages: vec![stage],
            spacing: Meters::from_mm(30.0),
        };
        let eff = ps.efficiency_db(F, v0);
        assert!(eff > -1.5, "resonant sheet should pass, got {eff} dB");
    }

    #[test]
    fn phase_moves_with_bias() {
        let ps = test_shifter(2);
        let swing = ps.phase_swing(F, Volts(2.0), Volts(15.0));
        assert!(
            swing.0.abs() > 0.5,
            "bias must move the phase substantially, got {} rad",
            swing.0
        );
    }

    #[test]
    fn efficiency_stays_usable_across_bias() {
        // The working premise of Figure 11: biasing changes phase while
        // transmission remains serviceable.
        let ps = test_shifter(2);
        for v in [2.0, 3.0, 4.0, 5.0, 6.0, 10.0, 15.0] {
            let eff = ps.efficiency_db(F, Volts(v));
            assert!(eff > -10.0, "efficiency collapsed to {eff} dB at {v} V");
        }
    }

    #[test]
    fn phase_is_monotone_in_bias_over_working_range() {
        let ps = test_shifter(2);
        let mut prev = ps.transmission_phase(F, Volts(2.0)).0;
        let mut direction = 0.0;
        for i in 1..=26 {
            let v = Volts(2.0 + 13.0 * i as f64 / 26.0);
            let cur = ps.transmission_phase(F, v).0;
            let step = wrap_phase(cur - prev);
            if step.abs() > 1e-6 {
                if direction == 0.0 {
                    direction = step.signum();
                } else {
                    assert_eq!(
                        step.signum(),
                        direction,
                        "phase reversed direction at {v:?}"
                    );
                }
            }
            prev = cur;
        }
    }

    #[test]
    fn network_stays_passive_and_reciprocal() {
        let ps = test_shifter(2);
        for v in [0.0, 2.0, 8.0, 15.0, 30.0] {
            for f_ghz in [2.0, 2.44, 2.8] {
                let s = ps.s_params(Hertz::from_ghz(f_ghz), Volts(v));
                assert!(s.is_passive(1e-9), "active at {v} V, {f_ghz} GHz");
                assert!(s.is_reciprocal(1e-9));
            }
        }
    }

    #[test]
    fn more_stages_more_phase_swing() {
        let one = test_shifter(1)
            .phase_swing(F, Volts(2.0), Volts(15.0))
            .0
            .abs();
        let two = test_shifter(2)
            .phase_swing(F, Volts(2.0), Volts(15.0))
            .0
            .abs();
        assert!(two > one * 1.2, "one stage {one}, two stages {two}");
    }

    #[test]
    fn effective_capacitance_is_levered_down() {
        let stage = test_stage();
        let c_eff = stage.effective_capacitance(Volts(2.0));
        let c_diode = stage.varactor.capacitance(Volts(2.0));
        assert!(c_eff.0 < c_diode.0);
        assert!(c_eff.0 < stage.coupling_capacitance.0);
    }

    #[test]
    fn effective_capacitance_monotone_decreasing_in_bias() {
        let stage = test_stage();
        let mut prev = f64::INFINITY;
        for i in 0..=15 {
            let c = stage.effective_capacitance(Volts(i as f64)).0;
            assert!(c < prev);
            prev = c;
        }
    }

    #[test]
    fn eq12_bandwidth_grows_with_line_length() {
        // The paper's rationale for the two-layer design: bandwidth grows
        // roughly linearly with line length (λ/m with smaller m).
        let f0 = Hertz::from_ghz(2.45);
        let bw_quarter = line_bandwidth(f0, 4.0, 0.2, Ohms(377.0), Ohms(200.0));
        let bw_eighth = line_bandwidth(f0, 8.0, 0.2, Ohms(377.0), Ohms(200.0));
        assert!(bw_quarter.0 > bw_eighth.0, "longer line, wider band");
        assert!(bw_quarter.0 > 0.0 && bw_quarter.0 < 2.0 * f0.0);
    }

    #[test]
    fn eq12_matched_load_has_no_band_limit() {
        let f0 = Hertz::from_ghz(2.45);
        let bw = line_bandwidth(f0, 4.0, 0.2, Ohms(377.0), Ohms(377.0));
        assert_eq!(bw.0, 2.0 * f0.0);
    }

    #[test]
    fn eq12_tighter_match_requirement_narrows_band() {
        let f0 = Hertz::from_ghz(2.45);
        let loose = line_bandwidth(f0, 4.0, 0.3, Ohms(377.0), Ohms(150.0));
        let tight = line_bandwidth(f0, 4.0, 0.05, Ohms(377.0), Ohms(150.0));
        assert!(tight.0 < loose.0);
    }

    #[test]
    fn reflection_coefficient_limits() {
        assert!(reflection_coefficient(Complex::real(377.0), 377.0).abs() < 1e-12);
        let short = reflection_coefficient(Complex::ZERO, 377.0);
        assert!((short + Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn wrap_phase_range() {
        for p in [-10.0, -3.2, 0.0, 3.2, 10.0] {
            let w = wrap_phase(p);
            assert!(w > -std::f64::consts::PI - 1e-12 && w <= std::f64::consts::PI + 1e-12);
        }
        assert!((wrap_phase(std::f64::consts::TAU + 0.1) - 0.1).abs() < 1e-12);
    }
}
