//! Polarized (dual-polarization) network theory.
//!
//! A metasurface layer interacts differently with X- and Y-polarized
//! fields, and rotated layers (the ±45° quarter-wave plates) couple the
//! two polarizations. We model each layer as a *four-port* — two physical
//! ports × two polarizations — whose scattering behaviour is described by
//! four 2×2 blocks (S11, S12, S21, S22), each block a [`Mat2`] over the
//! polarization basis.
//!
//! The paper's Eq. (11) transmission efficiency for an x-polarized wave,
//! `|Sxx21|² + |Syx21|²`, is the squared column norm of the S21 block.
//!
//! Cascading uses the wave-transfer (T) block formalism so that
//! inter-layer multiple reflections are accounted for exactly — this is
//! what makes thin/thick substrate trade-offs (Figures 8–10) come out of
//! the model instead of being painted on.

use rfmath::complex::Complex;
use rfmath::jones::JonesMatrix;
use rfmath::matrix::{Mat2, Vec2};
use rfmath::units::{Db, Radians};

use crate::twoport::SParams;

/// Scattering description of a two-port, dual-polarization network.
///
/// Blocks map incident polarization vectors to outgoing ones:
/// `[b1; b2] = [[S11, S12], [S21, S22]]·[a1; a2]` with `a`, `b` ∈ ℂ²
/// over the (X, Y) polarization basis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolarizedS {
    /// Port-1 reflection block.
    pub s11: Mat2,
    /// Reverse transmission block.
    pub s12: Mat2,
    /// Forward transmission block.
    pub s21: Mat2,
    /// Port-2 reflection block.
    pub s22: Mat2,
    /// Reference impedance, Ω (same for both polarizations and ports).
    pub z0: f64,
}

impl PolarizedS {
    /// Builds a polarization-diagonal network from independent per-axis
    /// two-ports (both referenced to the same `z0`).
    ///
    /// # Panics
    /// Panics if the two S-parameter sets use different reference
    /// impedances.
    pub fn from_axes(x: SParams, y: SParams) -> Self {
        assert!(
            (x.z0 - y.z0).abs() < 1e-9,
            "axis networks must share a reference impedance"
        );
        Self {
            s11: Mat2::diag(x.s11, y.s11),
            s12: Mat2::diag(x.s12, y.s12),
            s21: Mat2::diag(x.s21, y.s21),
            s22: Mat2::diag(x.s22, y.s22),
            z0: x.z0,
        }
    }

    /// An ideal polarization-preserving through.
    pub fn ideal_through(z0: f64) -> Self {
        Self {
            s11: Mat2::ZERO,
            s12: Mat2::IDENTITY,
            s21: Mat2::IDENTITY,
            s22: Mat2::ZERO,
            z0,
        }
    }

    /// Rotates the network's principal axes counterclockwise by `theta`
    /// (e.g. a wave plate mounted at 45°): every block is conjugated by
    /// the rotation matrix, `B' = R·B·Rᵀ`.
    pub fn rotated(self, theta: Radians) -> Self {
        let r = Mat2::rotation(theta.0);
        let rt = r.transpose();
        Self {
            s11: r * self.s11 * rt,
            s12: r * self.s12 * rt,
            s21: r * self.s21 * rt,
            s22: r * self.s22 * rt,
            z0: self.z0,
        }
    }

    /// Cascades `self` followed by `next` using block wave-transfer
    /// matrices, accounting for all inter-stage multiple reflections.
    ///
    /// Returns `None` if a transmission block is singular (a perfectly
    /// blocking stage), in which case no cascade exists numerically.
    pub fn cascade(self, next: PolarizedS) -> Option<PolarizedS> {
        let t1 = self.to_transfer()?;
        let t2 = next.to_transfer()?;
        BlockT::multiply(t1, t2).to_s(self.z0)
    }

    /// Cascades a chain of stages in traversal order.
    pub fn chain(stages: &[PolarizedS]) -> Option<PolarizedS> {
        // A one-stage chain is the stage itself, bit for bit — including
        // perfectly blocking stages (singular S21), which have no
        // wave-transfer form but are still valid scattering descriptions.
        if let [only] = stages {
            return Some(*only);
        }
        let mut scratch = WaveTransfer::identity(stages.first()?.z0);
        Self::chain_into(&mut scratch, stages)
    }

    /// Allocation-free chain: cascades `stages` through a caller-owned
    /// [`WaveTransfer`] accumulator, so per-point inner loops (grid
    /// sweeps, batched evaluators) do zero heap allocation.
    ///
    /// The accumulator is reset from the first stage and left holding the
    /// full product on return, letting callers inspect or extend the
    /// partial cascade. Returns `None` for an empty chain or when any
    /// stage (or the final product) has a singular transmission block.
    pub fn chain_into(scratch: &mut WaveTransfer, stages: &[PolarizedS]) -> Option<PolarizedS> {
        let (first, rest) = stages.split_first()?;
        *scratch = first.wave_transfer()?;
        for stage in rest {
            scratch.push(&stage.wave_transfer()?);
        }
        scratch.to_s()
    }

    /// The block wave-transfer form of this stage, precomputable once and
    /// reusable across many cascades (the basis of the batched surface
    /// evaluator). Returns `None` when the transmission block is singular
    /// (a perfectly blocking stage has no transfer representation).
    pub fn wave_transfer(self) -> Option<WaveTransfer> {
        Some(WaveTransfer {
            t: self.to_transfer()?,
            z0: self.z0,
        })
    }

    fn to_transfer(self) -> Option<BlockT> {
        // [a1; b1] = T·[b2; a2]
        // T11 = S21⁻¹, T12 = −S21⁻¹·S22, T21 = S11·S21⁻¹,
        // T22 = S12 − S11·S21⁻¹·S22.
        let s21_inv = self.s21.inverse()?;
        Some(BlockT {
            t11: s21_inv,
            t12: -(s21_inv * self.s22),
            t21: self.s11 * s21_inv,
            t22: self.s12 - self.s11 * s21_inv * self.s22,
        })
    }

    /// Forward transmission as a Jones matrix acting on incident port-1
    /// polarization states.
    pub fn transmission_jones(self) -> JonesMatrix {
        JonesMatrix(self.s21)
    }

    /// Port-1 reflection as a Jones matrix.
    pub fn reflection_jones(self) -> JonesMatrix {
        JonesMatrix(self.s11)
    }

    /// Eq. (11): transmission efficiency for an X-polarized incident wave,
    /// `|Sxx21|² + |Syx21|²`.
    pub fn efficiency_x(self) -> f64 {
        self.s21.a.norm_sqr() + self.s21.c.norm_sqr()
    }

    /// Eq. (11): transmission efficiency for a Y-polarized incident wave,
    /// `|Sxy21|² + |Syy21|²`.
    pub fn efficiency_y(self) -> f64 {
        self.s21.b.norm_sqr() + self.s21.d.norm_sqr()
    }

    /// Transmission efficiency for an arbitrary incident polarization
    /// (unit) vector.
    pub fn efficiency_for(self, incident: Vec2) -> f64 {
        let pin = incident.norm_sqr();
        if pin <= 0.0 {
            return 0.0;
        }
        (self.s21 * incident).norm_sqr() / pin
    }

    /// X-excitation efficiency in dB — the y-axis of Figures 8–11.
    pub fn efficiency_x_db(self) -> Db {
        Db::from_linear(self.efficiency_x())
    }

    /// Y-excitation efficiency in dB.
    pub fn efficiency_y_db(self) -> Db {
        Db::from_linear(self.efficiency_y())
    }

    /// True when passive within `tol`: for any incident wave, outgoing
    /// power (reflected + transmitted) does not exceed incident power.
    /// Checked on the polarization basis vectors of both ports.
    pub fn is_passive(self, tol: f64) -> bool {
        let checks = [(self.s11, self.s21), (self.s22, self.s12)];
        for (refl, trans) in checks {
            for basis in [Vec2::from_real(1.0, 0.0), Vec2::from_real(0.0, 1.0)] {
                let out = (refl * basis).norm_sqr() + (trans * basis).norm_sqr();
                if out > 1.0 + tol {
                    return false;
                }
            }
        }
        true
    }

    /// True when reciprocal (`S12 == S21ᵀ` for this block convention)
    /// within `tol`.
    pub fn is_reciprocal(self, tol: f64) -> bool {
        self.s12.max_abs_diff(self.s21.transpose()) <= tol
    }
}

/// A stage (or partial cascade) in block wave-transfer form.
///
/// Composition in the T domain is plain block-matrix multiplication, so
/// a chain costs one S→T conversion per stage plus one T→S conversion at
/// the end — instead of the three 2×2 inversions per stage that repeated
/// [`PolarizedS::cascade`] calls pay. Batched evaluators precompute the
/// transfer of every bias-independent stage once and multiply cached
/// transfers per grid point with zero heap allocation.
#[derive(Clone, Copy, Debug)]
pub struct WaveTransfer {
    t: BlockT,
    z0: f64,
}

impl WaveTransfer {
    /// The identity transfer (a zero-length through) at reference
    /// impedance `z0`.
    pub fn identity(z0: f64) -> Self {
        Self {
            t: BlockT {
                t11: Mat2::IDENTITY,
                t12: Mat2::ZERO,
                t21: Mat2::ZERO,
                t22: Mat2::IDENTITY,
            },
            z0,
        }
    }

    /// Appends `next` to the cascade in place (`self ← self·next`, wave
    /// traverses `self` first). No allocation.
    pub fn push(&mut self, next: &WaveTransfer) {
        debug_assert!(
            (self.z0 - next.z0).abs() < 1e-9,
            "cascaded transfers must share a reference impedance"
        );
        self.t = BlockT::multiply(self.t, next.t);
    }

    /// The cascade `self` followed by `next`, by value.
    pub fn then(mut self, next: &WaveTransfer) -> Self {
        self.push(next);
        self
    }

    /// Converts the accumulated cascade back to scattering form; `None`
    /// when the product transmission block is singular.
    pub fn to_s(&self) -> Option<PolarizedS> {
        self.t.to_s(self.z0)
    }

    /// Reference impedance the S-domain endpoints use.
    pub fn z0(&self) -> f64 {
        self.z0
    }

    /// The transfer as a row-major 4×4 complex matrix
    /// (`[[T11, T12], [T21, T22]]` flattened): block composition is
    /// plain 4×4 matrix multiplication in this view, which is what lets
    /// batched evaluators keep the cascade in structure-of-arrays form.
    pub fn components(&self) -> [Complex; 16] {
        let t = &self.t;
        [
            t.t11.a, t.t11.b, t.t12.a, t.t12.b, //
            t.t11.c, t.t11.d, t.t12.c, t.t12.d, //
            t.t21.a, t.t21.b, t.t22.a, t.t22.b, //
            t.t21.c, t.t21.d, t.t22.c, t.t22.d, //
        ]
    }

    /// Rebuilds a transfer from the row-major 4×4 component view
    /// (inverse of [`WaveTransfer::components`]).
    pub fn from_components(m: [Complex; 16], z0: f64) -> Self {
        Self {
            t: BlockT {
                t11: Mat2::new(m[0], m[1], m[4], m[5]),
                t12: Mat2::new(m[2], m[3], m[6], m[7]),
                t21: Mat2::new(m[8], m[9], m[12], m[13]),
                t22: Mat2::new(m[10], m[11], m[14], m[15]),
            },
            z0,
        }
    }
}

/// Block wave-transfer matrix: `[a1; b1] = T·[b2; a2]` with 2×2 blocks.
#[derive(Clone, Copy, Debug)]
struct BlockT {
    t11: Mat2,
    t12: Mat2,
    t21: Mat2,
    t22: Mat2,
}

impl BlockT {
    fn multiply(a: BlockT, b: BlockT) -> BlockT {
        BlockT {
            t11: a.t11 * b.t11 + a.t12 * b.t21,
            t12: a.t11 * b.t12 + a.t12 * b.t22,
            t21: a.t21 * b.t11 + a.t22 * b.t21,
            t22: a.t21 * b.t12 + a.t22 * b.t22,
        }
    }

    fn to_s(self, z0: f64) -> Option<PolarizedS> {
        // S21 = T11⁻¹, S22 = −T11⁻¹·T12, S11 = T21·T11⁻¹,
        // S12 = T22 − T21·T11⁻¹·T12.
        let t11_inv = self.t11.inverse()?;
        Some(PolarizedS {
            s21: t11_inv,
            s22: -(t11_inv * self.t12),
            s11: self.t21 * t11_inv,
            s12: self.t22 - self.t21 * t11_inv * self.t12,
            z0,
        })
    }
}

/// A lossless polarization-preserving phase screen (same phase on both
/// axes) — handy for tests and for modelling spacer regions at the
/// polarized level.
pub fn phase_screen(phase: Radians, z0: f64) -> PolarizedS {
    let p = Mat2::IDENTITY.scale(Complex::cis(phase.0));
    PolarizedS {
        s11: Mat2::ZERO,
        s12: p,
        s21: p,
        s22: Mat2::ZERO,
        z0,
    }
}

/// An ideal retarder screen: unit transmission with per-axis phases
/// `(phi_x, phi_y)` and no reflection. The idealized version of a
/// birefringent layer, used for cross-checks against the full circuit
/// model.
pub fn retarder_screen(phi_x: Radians, phi_y: Radians, z0: f64) -> PolarizedS {
    let p = Mat2::diag(Complex::cis(phi_x.0), Complex::cis(phi_y.0));
    PolarizedS {
        s11: Mat2::ZERO,
        s12: p,
        s21: p,
        s22: Mat2::ZERO,
        z0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::ETA0;
    use crate::twoport::Abcd;
    use rfmath::c64;
    use rfmath::jones::JonesVector;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    #[test]
    fn diagonal_network_keeps_axes_independent() {
        let x = Abcd::series(c64(50.0, 0.0)).to_s(ETA0);
        let y = Abcd::identity().to_s(ETA0);
        let p = PolarizedS::from_axes(x, y);
        assert!(p.efficiency_x() < 1.0);
        assert!((p.efficiency_y() - 1.0).abs() < 1e-12);
        // No cross-polarization terms.
        assert!(p.s21.b.abs() < 1e-12 && p.s21.c.abs() < 1e-12);
    }

    #[test]
    fn ideal_through_cascades_to_itself() {
        let t = PolarizedS::ideal_through(ETA0);
        let tt = t.cascade(t).unwrap();
        assert!(tt.s21.max_abs_diff(Mat2::IDENTITY) < 1e-12);
        assert!(tt.s11.max_abs_diff(Mat2::ZERO) < 1e-12);
    }

    #[test]
    fn cascade_matches_scalar_theory_per_axis() {
        // Two series-impedance screens per axis: cascading at the
        // polarized level must equal the scalar ABCD cascade (including
        // multiple reflections).
        let za = c64(30.0, 40.0);
        let zb = c64(10.0, -60.0);
        let scalar = Abcd::series(za).then(Abcd::series(zb)).to_s(ETA0);
        let layer_a =
            PolarizedS::from_axes(Abcd::series(za).to_s(ETA0), Abcd::identity().to_s(ETA0));
        let layer_b =
            PolarizedS::from_axes(Abcd::series(zb).to_s(ETA0), Abcd::identity().to_s(ETA0));
        let cascaded = layer_a.cascade(layer_b).unwrap();
        assert!((cascaded.s21.a - scalar.s21).abs() < 1e-10);
        assert!((cascaded.s11.a - scalar.s11).abs() < 1e-10);
    }

    #[test]
    fn rotation_conjugates_blocks() {
        // Rotating an x-only attenuator by 90° turns it into a y-only one.
        let x = Abcd::series(c64(100.0, 0.0)).to_s(ETA0);
        let y = Abcd::identity().to_s(ETA0);
        let p = PolarizedS::from_axes(x, y).rotated(Radians(FRAC_PI_2));
        assert!((p.efficiency_x() - 1.0).abs() < 1e-12);
        assert!(p.efficiency_y() < 1.0);
    }

    #[test]
    fn retarder_sandwich_rotates_polarization() {
        // Ideal-screen version of Eq. (8): QWP(−45°)·BFS(δ)·QWP(+45°)
        // rotates by δ/2. Cascading ideal screens has no reflections, so
        // the result must match the Jones-level prediction exactly.
        let delta = 1.1_f64;
        let qwp = retarder_screen(Radians(0.0), Radians(FRAC_PI_2), ETA0);
        let qwp_p = qwp.rotated(Radians(FRAC_PI_4));
        let qwp_m = qwp.rotated(Radians(-FRAC_PI_4));
        let bfs = retarder_screen(Radians(0.0), Radians(delta), ETA0);
        // Traversal order: QWP+45 → BFS → QWP−45 (chain order is spatial).
        let stack = PolarizedS::chain(&[qwp_p, bfs, qwp_m]).unwrap();
        let jones = stack.transmission_jones();
        let angle = jones.rotation_angle(1e-9).expect("should be a rotation");
        assert!(
            (angle.0.abs() - delta / 2.0).abs() < 1e-9,
            "angle = {}",
            angle.0
        );
        // And the stack is lossless.
        let v = JonesVector::horizontal();
        assert!((jones.transmittance(v) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_matches_eq11() {
        // Hand-build an S21 block and verify the efficiency formulas.
        let s21 = Mat2::new(c64(0.6, 0.0), c64(0.1, 0.0), c64(0.3, 0.0), c64(0.7, 0.0));
        let p = PolarizedS {
            s11: Mat2::ZERO,
            s12: s21.transpose(),
            s21,
            s22: Mat2::ZERO,
            z0: ETA0,
        };
        assert!((p.efficiency_x() - (0.36 + 0.09)).abs() < 1e-12);
        assert!((p.efficiency_y() - (0.01 + 0.49)).abs() < 1e-12);
        assert!(p.is_reciprocal(1e-12));
    }

    #[test]
    fn passivity_detects_gain() {
        let active = PolarizedS {
            s11: Mat2::ZERO,
            s12: Mat2::IDENTITY.scale(c64(1.5, 0.0)),
            s21: Mat2::IDENTITY.scale(c64(1.5, 0.0)),
            s22: Mat2::ZERO,
            z0: ETA0,
        };
        assert!(!active.is_passive(1e-9));
        assert!(PolarizedS::ideal_through(ETA0).is_passive(1e-9));
    }

    #[test]
    fn chain_of_rotated_screens_composes_rotations() {
        // Two δ=π/2 rotator sandwiches in series rotate by π/2 total.
        let make_rotator = |delta: f64| {
            let qwp = retarder_screen(Radians(0.0), Radians(FRAC_PI_2), ETA0);
            PolarizedS::chain(&[
                qwp.rotated(Radians(FRAC_PI_4)),
                retarder_screen(Radians(0.0), Radians(delta), ETA0),
                qwp.rotated(Radians(-FRAC_PI_4)),
            ])
            .unwrap()
        };
        let one = make_rotator(FRAC_PI_2);
        let two = one.cascade(one).unwrap();
        let angle = two
            .transmission_jones()
            .rotation_angle(1e-9)
            .expect("rotation");
        assert!((angle.0.abs() - FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn chain_into_matches_pairwise_cascade() {
        // The T-domain accumulator must agree with repeated pairwise
        // cascading (which round-trips through S between stages).
        let za = c64(30.0, 40.0);
        let zb = c64(10.0, -60.0);
        let zc = c64(-5.0, 22.0);
        let stage =
            |z| PolarizedS::from_axes(Abcd::series(z).to_s(ETA0), Abcd::shunt(z.inv()).to_s(ETA0));
        let stages = [stage(za), stage(zb).rotated(Radians(0.7)), stage(zc)];
        let pairwise = stages[0]
            .cascade(stages[1])
            .unwrap()
            .cascade(stages[2])
            .unwrap();
        let mut scratch = WaveTransfer::identity(ETA0);
        let chained = PolarizedS::chain_into(&mut scratch, &stages).unwrap();
        for (a, b) in [
            (chained.s11, pairwise.s11),
            (chained.s12, pairwise.s12),
            (chained.s21, pairwise.s21),
            (chained.s22, pairwise.s22),
        ] {
            assert!(a.max_abs_diff(b) < 1e-12, "diff = {}", a.max_abs_diff(b));
        }
        // The scratch accumulator holds the full product afterwards.
        let from_scratch = scratch.to_s().unwrap();
        assert!(from_scratch.s21.max_abs_diff(chained.s21) < 1e-15);
        assert!((scratch.z0() - ETA0).abs() < 1e-12);
    }

    #[test]
    fn wave_transfer_round_trips() {
        let s = PolarizedS::from_axes(
            Abcd::series(c64(12.0, -9.0)).to_s(ETA0),
            Abcd::shunt(c64(0.001, 0.004)).to_s(ETA0),
        )
        .rotated(Radians(-0.4));
        let back = s.wave_transfer().unwrap().to_s().unwrap();
        assert!(back.s11.max_abs_diff(s.s11) < 1e-12);
        assert!(back.s21.max_abs_diff(s.s21) < 1e-12);
    }

    #[test]
    fn identity_transfer_is_neutral() {
        let s = PolarizedS::from_axes(
            Abcd::series(c64(30.0, 40.0)).to_s(ETA0),
            Abcd::identity().to_s(ETA0),
        );
        let composed = WaveTransfer::identity(ETA0)
            .then(&s.wave_transfer().unwrap())
            .to_s()
            .unwrap();
        assert!(composed.s21.max_abs_diff(s.s21) < 1e-12);
        assert!(composed.s11.max_abs_diff(s.s11) < 1e-12);
    }

    #[test]
    fn singular_stage_returns_none() {
        let blocker = PolarizedS {
            s11: Mat2::IDENTITY,
            s12: Mat2::ZERO,
            s21: Mat2::ZERO,
            s22: Mat2::IDENTITY,
            z0: ETA0,
        };
        assert!(blocker.cascade(PolarizedS::ideal_through(ETA0)).is_none());
        // A multi-stage chain through a blocker has no cascade…
        assert!(PolarizedS::chain(&[blocker, PolarizedS::ideal_through(ETA0)]).is_none());
        // …but a single-stage "chain" is the stage itself, reflection
        // block and all (a perfect mirror is a valid network).
        let alone = PolarizedS::chain(&[blocker]).unwrap();
        assert_eq!(alone.s11, Mat2::IDENTITY);
        assert_eq!(alone.s21, Mat2::ZERO);
    }

    #[test]
    fn phase_screen_only_adds_phase() {
        let p = phase_screen(Radians(0.9), ETA0);
        let j = p.transmission_jones();
        assert!((j.0.a.arg() - 0.9).abs() < 1e-12);
        assert!((j.transmittance(JonesVector::linear_deg(33.0)) - 1.0).abs() < 1e-12);
    }
}
