//! Two-port network theory: ABCD chain matrices and S-parameters.
//!
//! Implements the scattering formalism of the paper's §3.2 (Eq. 9–10):
//! incident/reflected wave amplitudes related by the scattering matrix
//! `S`, with `S21` the transmission coefficient whose magnitude-squared
//! is the transmission efficiency the whole metasurface design is
//! optimized for. Cascading is done in the ABCD (chain) representation
//! where composition is plain matrix multiplication.

use rfmath::complex::Complex;
use rfmath::matrix::Mat2;
use rfmath::units::{Db, Hertz, Meters};

use crate::substrate::Slab;

/// ABCD (chain) matrix of a reciprocal two-port:
/// `[V1; I1] = [[A, B], [C, D]]·[V2; I2]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Abcd(pub Mat2);

/// Scattering parameters of a two-port, referenced to a real impedance
/// `z0` (Eq. 10 of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SParams {
    /// Input reflection coefficient.
    pub s11: Complex,
    /// Reverse transmission coefficient.
    pub s12: Complex,
    /// Forward transmission coefficient.
    pub s21: Complex,
    /// Output reflection coefficient.
    pub s22: Complex,
    /// Reference impedance, Ω.
    pub z0: f64,
}

impl Abcd {
    /// Identity (a zero-length through).
    pub fn identity() -> Self {
        Self(Mat2::IDENTITY)
    }

    /// Series impedance element: `[[1, Z], [0, 1]]`.
    pub fn series(z: Complex) -> Self {
        Self(Mat2::new(Complex::ONE, z, Complex::ZERO, Complex::ONE))
    }

    /// Shunt admittance element: `[[1, 0], [Y, 1]]`.
    pub fn shunt(y: Complex) -> Self {
        Self(Mat2::new(Complex::ONE, Complex::ZERO, y, Complex::ONE))
    }

    /// Transmission-line section with characteristic impedance `zc`
    /// (complex for lossy media) and complex propagation `γ·l`:
    /// `[[cosh γl, Zc·sinh γl], [sinh γl / Zc, cosh γl]]`.
    pub fn line(zc: Complex, gamma_l: Complex) -> Self {
        let ch = gamma_l.cosh();
        let sh = gamma_l.sinh();
        Self(Mat2::new(ch, zc * sh, sh / zc, ch))
    }

    /// A dielectric slab traversed by a normally incident plane wave,
    /// treated as a line section with the medium's wave impedance.
    pub fn slab(slab: &Slab, f: Hertz) -> Self {
        let zc = slab.material.wave_impedance();
        let gamma_l = slab.material.gamma(f) * slab.thickness.0;
        Self::line(zc, gamma_l)
    }

    /// An air gap of the given length (board spacing in the stack).
    pub fn air_gap(length: Meters, f: Hertz) -> Self {
        Self::slab(&Slab::new(crate::substrate::Material::AIR, length), f)
    }

    /// Ideal transformer with turns ratio `n` (used in matching studies).
    pub fn transformer(n: f64) -> Self {
        Self(Mat2::from_real(n, 0.0, 0.0, 1.0 / n))
    }

    /// Cascades `self` followed by `next` (wave passes `self` first).
    pub fn then(self, next: Abcd) -> Abcd {
        Abcd(self.0 * next.0)
    }

    /// Cascades a chain of sections in traversal order.
    pub fn chain(sections: &[Abcd]) -> Abcd {
        sections
            .iter()
            .fold(Abcd::identity(), |acc, s| acc.then(*s))
    }

    /// Determinant; 1 for reciprocal networks.
    pub fn det(self) -> Complex {
        self.0.det()
    }

    /// True when the network is reciprocal (`AD − BC = 1`) within `tol`.
    pub fn is_reciprocal(self, tol: f64) -> bool {
        (self.det() - Complex::ONE).abs() <= tol
    }

    /// Converts to S-parameters referenced to real `z0`.
    pub fn to_s(self, z0: f64) -> SParams {
        let (a, b, c, d) = (self.0.a, self.0.b, self.0.c, self.0.d);
        let bz = b / z0;
        let cz = c * z0;
        let denom = a + bz + cz + d;
        SParams {
            s11: (a + bz - cz - d) / denom,
            s12: 2.0 * self.det() / denom,
            s21: Complex::real(2.0) / denom,
            s22: (-1.0 * a + bz - cz + d) / denom,
            z0,
        }
    }

    /// Input impedance seen at port 1 with port 2 terminated in `zl`.
    pub fn input_impedance(self, zl: Complex) -> Complex {
        let (a, b, c, d) = (self.0.a, self.0.b, self.0.c, self.0.d);
        (a * zl + b) / (c * zl + d)
    }
}

impl SParams {
    /// Builds S-parameters from raw coefficients.
    pub fn new(s11: Complex, s12: Complex, s21: Complex, s22: Complex, z0: f64) -> Self {
        Self {
            s11,
            s12,
            s21,
            s22,
            z0,
        }
    }

    /// A perfectly matched, lossless through.
    pub fn ideal_through(z0: f64) -> Self {
        Self::new(Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO, z0)
    }

    /// Converts back to the ABCD representation.
    pub fn to_abcd(self) -> Abcd {
        let z0 = self.z0;
        let two_s21 = 2.0 * self.s21;
        let one = Complex::ONE;
        let a = ((one + self.s11) * (one - self.s22) + self.s12 * self.s21) / two_s21;
        let b = z0 * ((one + self.s11) * (one + self.s22) - self.s12 * self.s21) / two_s21;
        let c = ((one - self.s11) * (one - self.s22) - self.s12 * self.s21) / (two_s21 * z0);
        let d = ((one - self.s11) * (one + self.s22) + self.s12 * self.s21) / two_s21;
        Abcd(Mat2::new(a, b, c, d))
    }

    /// Insertion loss `−20·log10|S21|` in dB (positive for loss).
    pub fn insertion_loss(self) -> Db {
        Db(-20.0 * self.s21.abs().log10())
    }

    /// Transmission efficiency `|S21|²` as a (negative) dB figure —
    /// the quantity plotted in the paper's Figures 8–11.
    pub fn transmission_efficiency_db(self) -> Db {
        Db::from_linear(self.s21.norm_sqr())
    }

    /// Return loss `−20·log10|S11|` in dB (positive; large is good).
    pub fn return_loss(self) -> Db {
        Db(-20.0 * self.s11.abs().log10())
    }

    /// Fraction of incident power dissipated inside the network
    /// (`1 − |S11|² − |S21|²` for port-1 incidence). Negative values (to
    /// numerical tolerance) indicate an active/non-physical network.
    pub fn dissipated_fraction(self) -> f64 {
        1.0 - self.s11.norm_sqr() - self.s21.norm_sqr()
    }

    /// True when passive within tolerance for both drive directions.
    pub fn is_passive(self, tol: f64) -> bool {
        self.dissipated_fraction() >= -tol
            && (1.0 - self.s22.norm_sqr() - self.s12.norm_sqr()) >= -tol
    }

    /// True when reciprocal (`S12 == S21`) within tolerance.
    pub fn is_reciprocal(self, tol: f64) -> bool {
        (self.s12 - self.s21).abs() <= tol
    }

    /// Transmission phase `∠S21` in radians.
    pub fn transmission_phase(self) -> f64 {
        self.s21.arg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::{Material, Slab, ETA0};
    use rfmath::c64;

    const F: Hertz = Hertz(2.44e9);
    const Z0: f64 = 50.0;

    #[test]
    fn identity_is_perfect_through() {
        let s = Abcd::identity().to_s(Z0);
        assert!(s.s11.abs() < 1e-12);
        assert!((s.s21 - Complex::ONE).abs() < 1e-12);
        assert!(s.insertion_loss().0.abs() < 1e-9);
    }

    #[test]
    fn series_impedance_splits_power() {
        // A series 50 Ω resistor in a 50 Ω system: S21 = 2Z0/(2Z0+Z) = 2/3.
        let s = Abcd::series(c64(50.0, 0.0)).to_s(Z0);
        assert!((s.s21.re - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.s11.re - 1.0 / 3.0).abs() < 1e-12);
        assert!(s.is_passive(1e-12));
    }

    #[test]
    fn shunt_admittance_matches_theory() {
        // Shunt Y: S21 = 2/(2 + Y·Z0).
        let y = c64(0.02, 0.0); // 50 Ω shunt resistor
        let s = Abcd::shunt(y).to_s(Z0);
        assert!((s.s21.re - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.s11.re + 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn abcd_s_round_trip() {
        let net = Abcd::series(c64(10.0, 25.0)).then(Abcd::shunt(c64(0.01, -0.004)));
        let back = net.to_s(Z0).to_abcd();
        assert!(net.0.max_abs_diff(back.0) < 1e-9);
    }

    #[test]
    fn cascade_is_matrix_product() {
        let a = Abcd::series(c64(5.0, 3.0));
        let b = Abcd::shunt(c64(0.002, 0.001));
        let c = Abcd::line(c64(75.0, 0.0), c64(0.0, 1.0));
        let chained = Abcd::chain(&[a, b, c]);
        let manual = a.then(b).then(c);
        assert!(chained.0.max_abs_diff(manual.0) < 1e-12);
    }

    #[test]
    fn lossless_line_is_all_pass() {
        // A matched lossless line only adds phase.
        let line = Abcd::line(c64(Z0, 0.0), c64(0.0, 1.234));
        let s = line.to_s(Z0);
        assert!(s.s11.abs() < 1e-12);
        assert!((s.s21.abs() - 1.0).abs() < 1e-12);
        assert!((s.transmission_phase() + 1.234).abs() < 1e-12);
    }

    #[test]
    fn quarter_wave_transformer_inverts_impedance() {
        // Zin = Zc²/ZL for a λ/4 line.
        let zc = c64(70.7, 0.0);
        let line = Abcd::line(zc, c64(0.0, std::f64::consts::FRAC_PI_2));
        let zin = line.input_impedance(c64(100.0, 0.0));
        assert!((zin.re - 70.7 * 70.7 / 100.0).abs() < 0.01);
        assert!(zin.im.abs() < 1e-9);
    }

    #[test]
    fn air_slab_at_eta0_is_transparent() {
        let gap = Abcd::air_gap(Meters::from_mm(11.0), F);
        let s = gap.to_s(ETA0);
        assert!(s.s11.abs() < 1e-9);
        assert!((s.s21.abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fr4_slab_reflects_and_absorbs() {
        let slab = Slab::from_mm(Material::FR4, 4.0);
        let s = Abcd::slab(&slab, F).to_s(ETA0);
        // Impedance mismatch at the interfaces reflects…
        assert!(s.s11.abs() > 0.1, "S11 = {}", s.s11.abs());
        // …and tanδ dissipates.
        assert!(s.dissipated_fraction() > 0.005);
        assert!(s.is_passive(1e-9));
        assert!(s.is_reciprocal(1e-9));
    }

    #[test]
    fn reciprocity_of_passive_chains() {
        let net = Abcd::chain(&[
            Abcd::series(c64(3.0, 8.0)),
            Abcd::slab(&Slab::from_mm(Material::FR4, 1.0), F),
            Abcd::shunt(c64(0.001, 0.02)),
        ]);
        assert!(net.is_reciprocal(1e-9));
        let s = net.to_s(ETA0);
        assert!(s.is_reciprocal(1e-9));
    }

    #[test]
    fn transformer_matches_impedances() {
        // 2:1 transformer turns 50 Ω into 200 Ω at the input.
        let t = Abcd::transformer(2.0);
        let zin = t.input_impedance(c64(50.0, 0.0));
        assert!((zin.re - 200.0).abs() < 1e-9);
    }

    #[test]
    fn half_wave_slab_is_transparent() {
        // A lossless slab exactly λg/2 thick is reflectionless at any
        // impedance contrast (classic radome result).
        let lossless = Material {
            name: "lossless-er4",
            epsilon_r: 4.0,
            loss_tangent: 0.0,
            cost_usd_per_m2_mm: 0.0,
        };
        let lg = lossless.guided_wavelength(F);
        let slab = Slab::new(lossless, Meters(lg.0 / 2.0));
        let s = Abcd::slab(&slab, F).to_s(ETA0);
        assert!(s.s11.abs() < 1e-9, "S11 = {}", s.s11.abs());
        assert!((s.s21.abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_db_matches_insertion_loss() {
        let s = Abcd::series(c64(30.0, 10.0)).to_s(Z0);
        let eff = s.transmission_efficiency_db().0;
        let il = s.insertion_loss().0;
        assert!((eff + il).abs() < 1e-9, "efficiency = −insertion loss");
    }
}
