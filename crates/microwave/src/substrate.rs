//! Dielectric substrate models.
//!
//! The paper's central materials trade-off is between Rogers 5880
//! (`tanδ = 0.0009`, expensive) and FR4 (`tanδ = 0.02`, cheap): the loss
//! tangent drives dielectric attenuation and therefore the transmission
//! efficiency of the cascaded rotator (Figures 8–10). A substrate here is
//! a lossy dielectric slab characterized by relative permittivity,
//! loss tangent, thickness, and a cost figure used by the fabrication
//! model.

use rfmath::complex::Complex;
use rfmath::units::{Hertz, Meters};

/// Impedance of free space, ohms.
pub const ETA0: f64 = 376.730_313_668;

/// A dielectric laminate material with loss.
#[derive(Clone, Debug, PartialEq)]
pub struct Material {
    /// Human-readable name (e.g. `"FR4"`).
    pub name: &'static str,
    /// Relative permittivity εr (real part).
    pub epsilon_r: f64,
    /// Dielectric loss tangent tan δ.
    pub loss_tangent: f64,
    /// Indicative board cost in USD per square meter per mm of thickness
    /// (used by the fabrication cost model; order-of-magnitude figures).
    pub cost_usd_per_m2_mm: f64,
}

impl Material {
    /// FR4 glass epoxy — the paper's low-cost substrate choice
    /// (εr ≈ 4.4, tan δ = 0.02, ~$5/m²/mm at volume).
    pub const FR4: Material = Material {
        name: "FR4",
        epsilon_r: 4.4,
        loss_tangent: 0.02,
        cost_usd_per_m2_mm: 5.0,
    };

    /// Rogers RT/duroid 5880 — the high-performance reference substrate
    /// used by the 10 GHz rotator design the paper starts from
    /// (εr = 2.2, tan δ = 0.0009, ~$180/m²/mm).
    pub const ROGERS_5880: Material = Material {
        name: "Rogers 5880",
        epsilon_r: 2.2,
        loss_tangent: 0.0009,
        cost_usd_per_m2_mm: 180.0,
    };

    /// Air (vacuum approximation) — spacing layers between boards.
    pub const AIR: Material = Material {
        name: "air",
        epsilon_r: 1.0,
        loss_tangent: 0.0,
        cost_usd_per_m2_mm: 0.0,
    };

    /// Complex relative permittivity `εr·(1 − j·tanδ)`.
    ///
    /// The negative imaginary part encodes dielectric loss under the
    /// `exp(+jωt)` convention.
    pub fn complex_permittivity(&self) -> Complex {
        Complex::new(self.epsilon_r, -self.epsilon_r * self.loss_tangent)
    }

    /// Complex refractive index `n = √εrc` (µr = 1 for these laminates).
    pub fn refractive_index(&self) -> Complex {
        self.complex_permittivity().sqrt()
    }

    /// Intrinsic wave impedance of the medium `η = η0/√εrc`, ohms.
    pub fn wave_impedance(&self) -> Complex {
        Complex::real(ETA0) / self.refractive_index()
    }

    /// Complex propagation constant `γ = j·k0·n` in 1/m at frequency `f`.
    ///
    /// `Re(γ) = α` is the attenuation constant (Np/m), `Im(γ) = β` the
    /// phase constant (rad/m). For passive materials `α ≥ 0`.
    pub fn gamma(&self, f: Hertz) -> Complex {
        Complex::J * f.wavenumber() * self.refractive_index()
    }

    /// Dielectric attenuation in dB per meter at frequency `f`.
    pub fn attenuation_db_per_m(&self, f: Hertz) -> f64 {
        // dB = 20·log10(e)·α
        8.685_889_638 * self.gamma(f).re
    }

    /// Wavelength inside the material at `f`.
    pub fn guided_wavelength(&self, f: Hertz) -> Meters {
        Meters(f.wavelength().0 / self.refractive_index().re)
    }
}

/// A physical slab: a material at a given thickness.
#[derive(Clone, Debug, PartialEq)]
pub struct Slab {
    /// Laminate material.
    pub material: Material,
    /// Slab thickness.
    pub thickness: Meters,
}

impl Slab {
    /// Creates a slab.
    pub fn new(material: Material, thickness: Meters) -> Self {
        Self {
            material,
            thickness,
        }
    }

    /// Convenience: slab thickness in millimeters.
    pub fn from_mm(material: Material, mm: f64) -> Self {
        Self::new(material, Meters::from_mm(mm))
    }

    /// One-way dielectric loss through the slab at `f`, in dB (≥ 0).
    pub fn insertion_loss_db(&self, f: Hertz) -> f64 {
        self.material.attenuation_db_per_m(f) * self.thickness.0
    }

    /// Electrical length in radians at `f` (phase thickness).
    pub fn electrical_length(&self, f: Hertz) -> f64 {
        self.material.gamma(f).im * self.thickness.0
    }

    /// Board cost of this slab per square meter, USD.
    pub fn cost_usd_per_m2(&self) -> f64 {
        self.material.cost_usd_per_m2_mm * self.thickness.mm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fr4_is_much_lossier_than_rogers() {
        let f = Hertz::from_ghz(2.44);
        let fr4 = Material::FR4.attenuation_db_per_m(f);
        let rogers = Material::ROGERS_5880.attenuation_db_per_m(f);
        assert!(
            fr4 / rogers > 15.0,
            "FR4 {fr4} dB/m vs Rogers {rogers} dB/m"
        );
    }

    #[test]
    fn air_is_lossless() {
        let f = Hertz::from_ghz(2.44);
        assert!(Material::AIR.attenuation_db_per_m(f).abs() < 1e-12);
        assert!((Material::AIR.wave_impedance().re - ETA0).abs() < 1e-6);
    }

    #[test]
    fn complex_permittivity_sign_is_passive() {
        // Negative imaginary part ⇒ attenuation, never gain.
        for m in [Material::FR4, Material::ROGERS_5880] {
            assert!(m.complex_permittivity().im < 0.0);
            assert!(m.gamma(Hertz::from_ghz(2.4)).re > 0.0);
        }
    }

    #[test]
    fn refractive_index_of_fr4() {
        let n = Material::FR4.refractive_index();
        assert!((n.re - 4.4_f64.sqrt()).abs() < 0.01, "n = {n:?}");
    }

    #[test]
    fn wave_impedance_decreases_with_permittivity() {
        let eta_fr4 = Material::FR4.wave_impedance().abs();
        let eta_rogers = Material::ROGERS_5880.wave_impedance().abs();
        assert!(eta_fr4 < eta_rogers);
        assert!((eta_fr4 - ETA0 / 4.4_f64.sqrt()).abs() < 1.0);
    }

    #[test]
    fn phase_constant_matches_wavelength() {
        let f = Hertz::from_ghz(2.44);
        let g = Material::FR4.gamma(f);
        let lambda_g = Material::FR4.guided_wavelength(f);
        assert!((g.im * lambda_g.0 - std::f64::consts::TAU).abs() < 1e-6);
    }

    #[test]
    fn slab_loss_scales_with_thickness() {
        let f = Hertz::from_ghz(2.44);
        let thin = Slab::from_mm(Material::FR4, 0.4);
        let thick = Slab::from_mm(Material::FR4, 4.0);
        let ratio = thick.insertion_loss_db(f) / thin.insertion_loss_db(f);
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn slab_cost() {
        let s = Slab::from_mm(Material::ROGERS_5880, 1.0);
        assert!((s.cost_usd_per_m2() - 180.0).abs() < 1e-9);
        let cheap = Slab::from_mm(Material::FR4, 1.0);
        assert!(cheap.cost_usd_per_m2() < s.cost_usd_per_m2() / 30.0);
    }

    #[test]
    fn electrical_length_quarter_wave() {
        // A λg/4 slab has 90° electrical length.
        let f = Hertz::from_ghz(2.44);
        let lg4 = Material::FR4.guided_wavelength(f).0 / 4.0;
        let s = Slab::new(Material::FR4, Meters(lg4));
        assert!((s.electrical_length(f) - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }
}
