//! Lumped circuit elements: impedances of R, L, C and the resonator
//! combinations the metasurface unit cells reduce to.
//!
//! The metallic patterns plated on each metasurface board act as
//! admittance components (the paper's Figure 6 caption): patch edges are
//! capacitive, strips and vias are inductive, and the varactor-loaded
//! pattern behaves as a tunable series-LC shunt across free space.

use rfmath::complex::Complex;
use rfmath::units::{Farads, Henries, Hertz, Ohms};

/// Impedance of an ideal resistor, Ω.
pub fn resistor(r: Ohms) -> Complex {
    Complex::real(r.0)
}

/// Impedance of an ideal inductor at `f`: `jωL`.
pub fn inductor(l: Henries, f: Hertz) -> Complex {
    Complex::imag(f.angular() * l.0)
}

/// Impedance of an ideal capacitor at `f`: `1/(jωC)`.
pub fn capacitor(c: Farads, f: Hertz) -> Complex {
    // 1/(jωC) = −j/(ωC)
    Complex::imag(-1.0 / (f.angular() * c.0))
}

/// A series R-L-C branch (the equivalent circuit of a varactor-loaded
/// strip: junction capacitance in series with lead inductance and loss
/// resistance).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesRlc {
    /// Series resistance.
    pub r: Ohms,
    /// Series inductance.
    pub l: Henries,
    /// Series capacitance.
    pub c: Farads,
}

impl SeriesRlc {
    /// Creates a series RLC branch.
    pub fn new(r: Ohms, l: Henries, c: Farads) -> Self {
        Self { r, l, c }
    }

    /// Branch impedance at `f`.
    pub fn impedance(&self, f: Hertz) -> Complex {
        resistor(self.r) + inductor(self.l, f) + capacitor(self.c, f)
    }

    /// Branch admittance at `f`.
    pub fn admittance(&self, f: Hertz) -> Complex {
        self.impedance(f).inv()
    }

    /// Series resonant frequency `1/(2π√LC)`.
    pub fn resonant_frequency(&self) -> Hertz {
        Hertz(1.0 / (std::f64::consts::TAU * (self.l.0 * self.c.0).sqrt()))
    }

    /// Unloaded quality factor at resonance, `Q = (1/R)·√(L/C)`.
    /// Infinite for `R = 0`.
    pub fn q_factor(&self) -> f64 {
        if self.r.0 <= 0.0 {
            f64::INFINITY
        } else {
            (self.l.0 / self.c.0).sqrt() / self.r.0
        }
    }
}

/// A parallel L‖C tank with optional series loss in the inductive leg —
/// the equivalent circuit of a patch-over-ground resonator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParallelLc {
    /// Tank inductance.
    pub l: Henries,
    /// Tank capacitance.
    pub c: Farads,
    /// Loss resistance in series with the inductor.
    pub r: Ohms,
}

impl ParallelLc {
    /// Creates a parallel tank.
    pub fn new(l: Henries, c: Farads, r: Ohms) -> Self {
        Self { l, c, r }
    }

    /// Tank admittance at `f`.
    pub fn admittance(&self, f: Hertz) -> Complex {
        let y_l = (resistor(self.r) + inductor(self.l, f)).inv();
        let y_c = capacitor(self.c, f).inv();
        y_l + y_c
    }

    /// Tank impedance at `f`.
    pub fn impedance(&self, f: Hertz) -> Complex {
        self.admittance(f).inv()
    }

    /// Parallel resonant frequency (loss-free approximation).
    pub fn resonant_frequency(&self) -> Hertz {
        Hertz(1.0 / (std::f64::consts::TAU * (self.l.0 * self.c.0).sqrt()))
    }
}

/// Synthesizes the inductance that resonates with `c` at `f0`.
pub fn inductance_for_resonance(c: Farads, f0: Hertz) -> Henries {
    let w0 = f0.angular();
    Henries(1.0 / (w0 * w0 * c.0))
}

/// Synthesizes the capacitance that resonates with `l` at `f0`.
pub fn capacitance_for_resonance(l: Henries, f0: Hertz) -> Farads {
    let w0 = f0.angular();
    Farads(1.0 / (w0 * w0 * l.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: Hertz = Hertz(2.44e9);

    #[test]
    fn inductor_reactance_is_positive_imaginary() {
        let z = inductor(Henries::from_nh(3.0), F);
        assert!(z.re.abs() < 1e-12);
        assert!(z.im > 0.0);
        assert!((z.im - F.angular() * 3.0e-9).abs() < 1e-9);
    }

    #[test]
    fn capacitor_reactance_is_negative_imaginary() {
        let z = capacitor(Farads::from_pf(1.0), F);
        assert!(z.re.abs() < 1e-12);
        assert!(z.im < 0.0);
    }

    #[test]
    fn series_lc_resonates_where_expected() {
        let c = Farads::from_pf(1.5);
        let l = inductance_for_resonance(c, F);
        let rlc = SeriesRlc::new(Ohms(0.0), l, c);
        assert!((rlc.resonant_frequency().0 - F.0).abs() / F.0 < 1e-12);
        // At resonance the reactance vanishes.
        let z = rlc.impedance(F);
        assert!(z.im.abs() < 1e-6, "z = {z:?}");
    }

    #[test]
    fn series_resonator_reactance_sign_flips_across_resonance() {
        let c = Farads::from_pf(1.5);
        let l = inductance_for_resonance(c, F);
        let rlc = SeriesRlc::new(Ohms(0.5), l, c);
        let below = rlc.impedance(Hertz(2.0e9));
        let above = rlc.impedance(Hertz(3.0e9));
        assert!(below.im < 0.0, "capacitive below resonance");
        assert!(above.im > 0.0, "inductive above resonance");
    }

    #[test]
    fn q_factor_scales_inversely_with_loss() {
        let c = Farads::from_pf(1.0);
        let l = inductance_for_resonance(c, F);
        let q1 = SeriesRlc::new(Ohms(1.0), l, c).q_factor();
        let q2 = SeriesRlc::new(Ohms(2.0), l, c).q_factor();
        assert!((q1 / q2 - 2.0).abs() < 1e-12);
        assert!(SeriesRlc::new(Ohms(0.0), l, c).q_factor().is_infinite());
    }

    #[test]
    fn parallel_tank_blocks_at_resonance() {
        let c = Farads::from_pf(1.0);
        let l = inductance_for_resonance(c, F);
        let tank = ParallelLc::new(l, c, Ohms(0.0));
        // Lossless parallel tank: |Z| → very large at resonance.
        let z_res = tank.impedance(F).abs();
        let z_off = tank.impedance(Hertz(2.0e9)).abs();
        assert!(z_res > 100.0 * z_off, "Zres={z_res} Zoff={z_off}");
    }

    #[test]
    fn resonance_synthesis_round_trip() {
        let l = Henries::from_nh(2.7);
        let c = capacitance_for_resonance(l, F);
        let back = inductance_for_resonance(c, F);
        assert!((back.0 - l.0).abs() / l.0 < 1e-12);
    }
}
