//! Varactor diode model.
//!
//! The LLAMA prototype loads its birefringent-structure patterns with 720
//! SMV1233 varactor diodes; reverse bias from 2 V to 15 V realizes
//! junction capacitances from 2.41 pF down to 0.84 pF (paper §3.2). We
//! model the standard abrupt-junction capacitance law
//!
//! ```text
//! C(V) = Cj0 / (1 + V/Vj)^M + Cp
//! ```
//!
//! with parameters fitted so the paper's endpoints are reproduced, plus
//! the series loss resistance that sets the diode's contribution to
//! insertion loss.

use rfmath::interp::Curve1D;
use rfmath::units::{Farads, Ohms, Volts};

/// Junction-law varactor with parasitics.
#[derive(Clone, Debug, PartialEq)]
pub struct Varactor {
    /// Part name for diagnostics.
    pub name: &'static str,
    /// Zero-bias junction capacitance.
    pub cj0: Farads,
    /// Junction potential (≈0.7–0.8 V for silicon hyperabrupt parts).
    pub vj: Volts,
    /// Grading exponent.
    pub m: f64,
    /// Package/parasitic parallel capacitance.
    pub cp: Farads,
    /// Series resistance (loss).
    pub rs: Ohms,
    /// Maximum reverse working voltage.
    pub v_max: Volts,
    /// Unit cost in USD (the paper quotes ≈$0.50 for the SMV1233).
    pub unit_cost_usd: f64,
}

impl Varactor {
    /// The Skyworks SMV1233 model used by the LLAMA prototype.
    ///
    /// Parameters are fitted so that `C(2 V) = 2.41 pF` and
    /// `C(15 V) = 0.84 pF`, the capacitance range the paper states it
    /// used to approximate the diode in simulation.
    pub fn smv1233() -> Self {
        // With Vj = 0.8 V and requiring the two endpoint capacitances:
        //   M = ln(2.41/0.84) / ln((1+15/0.8)/(1+2/0.8)) ≈ 0.6093
        //   Cj0 = 2.41 pF · (1 + 2/0.8)^M ≈ 5.17 pF
        Self {
            name: "SMV1233",
            cj0: Farads::from_pf(5.17),
            vj: Volts(0.8),
            m: 0.6093,
            cp: Farads::from_pf(0.0),
            rs: Ohms(1.2),
            v_max: Volts(15.0),
            unit_cost_usd: 0.50,
        }
    }

    /// Junction capacitance at reverse bias `v` (clamped to `[0, v_max]`).
    pub fn capacitance(&self, v: Volts) -> Farads {
        let v = v.clamp(Volts(0.0), self.v_max);
        let c = self.cj0.0 / (1.0 + v.0 / self.vj.0).powf(self.m) + self.cp.0;
        Farads(c)
    }

    /// Inverse lookup: the reverse bias that produces capacitance `c`.
    ///
    /// Returns `None` when `c` is outside the achievable range.
    pub fn bias_for_capacitance(&self, c: Farads) -> Option<Volts> {
        let c_min = self.capacitance(self.v_max);
        let c_max = self.capacitance(Volts(0.0));
        if c.0 < c_min.0 - 1e-18 || c.0 > c_max.0 + 1e-18 {
            return None;
        }
        // Invert the junction law analytically.
        let cj = (c.0 - self.cp.0).max(1e-18);
        let ratio = self.cj0.0 / cj;
        let v = self.vj.0 * (ratio.powf(1.0 / self.m) - 1.0);
        Some(Volts(v.clamp(0.0, self.v_max.0)))
    }

    /// Sampled C–V curve over `[0, v_max]` with `n` points (for plotting
    /// and for table-driven controllers).
    pub fn cv_curve(&self, n: usize) -> Curve1D {
        let n = n.max(2);
        let xs: Vec<f64> = (0..n)
            .map(|i| self.v_max.0 * i as f64 / (n - 1) as f64)
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&v| self.capacitance(Volts(v)).pf())
            .collect();
        Curve1D::new(xs, ys)
    }

    /// Capacitance tuning ratio `C_max / C_min` over the working range.
    pub fn tuning_ratio(&self) -> f64 {
        self.capacitance(Volts(0.0)).0 / self.capacitance(self.v_max).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smv1233_matches_paper_endpoints() {
        let d = Varactor::smv1233();
        let c2 = d.capacitance(Volts(2.0)).pf();
        let c15 = d.capacitance(Volts(15.0)).pf();
        assert!((c2 - 2.41).abs() < 0.02, "C(2V) = {c2} pF");
        assert!((c15 - 0.84).abs() < 0.02, "C(15V) = {c15} pF");
    }

    #[test]
    fn capacitance_is_monotone_decreasing() {
        let d = Varactor::smv1233();
        let mut prev = f64::INFINITY;
        for i in 0..=30 {
            let v = Volts(15.0 * i as f64 / 30.0);
            let c = d.capacitance(v).pf();
            assert!(c < prev, "C must fall with reverse bias");
            prev = c;
        }
    }

    #[test]
    fn bias_clamps_outside_working_range() {
        let d = Varactor::smv1233();
        assert_eq!(d.capacitance(Volts(-5.0)), d.capacitance(Volts(0.0)));
        assert_eq!(d.capacitance(Volts(99.0)), d.capacitance(Volts(15.0)));
    }

    #[test]
    fn inverse_lookup_round_trips() {
        let d = Varactor::smv1233();
        for &v in &[0.0, 2.0, 5.0, 9.0, 15.0] {
            let c = d.capacitance(Volts(v));
            let back = d.bias_for_capacitance(c).unwrap();
            assert!((back.0 - v).abs() < 1e-6, "v={v} back={back:?}");
        }
    }

    #[test]
    fn inverse_lookup_rejects_unreachable() {
        let d = Varactor::smv1233();
        assert!(d.bias_for_capacitance(Farads::from_pf(10.0)).is_none());
        assert!(d.bias_for_capacitance(Farads::from_pf(0.1)).is_none());
    }

    #[test]
    fn cv_curve_interpolates_model() {
        let d = Varactor::smv1233();
        let curve = d.cv_curve(64);
        for &v in &[1.0, 4.5, 12.0] {
            let exact = d.capacitance(Volts(v)).pf();
            let interp = curve.eval(v);
            assert!((exact - interp).abs() / exact < 0.01, "v={v}");
        }
    }

    #[test]
    fn tuning_ratio_is_realistic() {
        // Hyperabrupt parts give ~3–7× tuning over full bias.
        let r = Varactor::smv1233().tuning_ratio();
        assert!(r > 2.0 && r < 10.0, "tuning ratio {r}");
    }
}
