//! Microstrip and periodic-pattern approximations.
//!
//! Closed-form synthesis formulas connecting the copper geometry of
//! Figure 6(b) — strip widths, patch sizes, gaps and the unit-cell
//! period — to the equivalent sheet inductances and capacitances used by
//! the layer circuit models. These are the standard quasi-static
//! approximations (Hammerstad–Jensen for microstrip lines; grid-sheet
//! formulas for periodic strip/patch arrays), which is exactly the level
//! of fidelity the equivalent-circuit design method needs.

use rfmath::units::{Farads, Henries, Hertz, Meters};

use crate::substrate::Material;

/// Vacuum permittivity, F/m.
pub const EPS0: f64 = 8.854_187_812_8e-12;

/// Vacuum permeability, H/m.
pub const MU0: f64 = 1.256_637_062_12e-6;

/// Quasi-static effective permittivity of a microstrip line of width `w`
/// on substrate height `h` (Hammerstad–Jensen).
pub fn microstrip_eps_eff(material: &Material, w: Meters, h: Meters) -> f64 {
    let er = material.epsilon_r;
    let u = w.0 / h.0;
    let a = 1.0
        + (1.0 / 49.0) * ((u.powi(4) + (u / 52.0).powi(2)) / (u.powi(4) + 0.432)).ln()
        + (1.0 / 18.7) * (1.0 + (u / 18.1).powi(3)).ln();
    let b = 0.564 * ((er - 0.9) / (er + 3.0)).powf(0.053);
    (er + 1.0) / 2.0 + (er - 1.0) / 2.0 * (1.0 + 10.0 / u).powf(-a * b)
}

/// Characteristic impedance of a microstrip line (Hammerstad–Jensen),
/// ohms.
pub fn microstrip_z0(material: &Material, w: Meters, h: Meters) -> f64 {
    let u = w.0 / h.0;
    let eps_eff = microstrip_eps_eff(material, w, h);
    let fu = 6.0 + (2.0 * std::f64::consts::PI - 6.0) * (-((30.666 / u).powf(0.7528))).exp();
    let z01 = 60.0 * ((fu / u) + (1.0 + (2.0 / u).powi(2)).sqrt()).ln();
    z01 / eps_eff.sqrt()
}

/// Equivalent sheet inductance of a periodic grid of metal strips of
/// width `w` with period `p`, for the field component parallel to the
/// strips (standard inductive-grid formula).
///
/// `L = (µ0·p / 2π)·ln(1 / sin(πw / 2p))`
pub fn strip_grid_inductance(period: Meters, strip_width: Meters) -> Henries {
    let arg = (std::f64::consts::PI * strip_width.0 / (2.0 * period.0)).sin();
    Henries(MU0 * period.0 / std::f64::consts::TAU * (1.0 / arg).ln())
}

/// Equivalent sheet capacitance of a periodic array of patches separated
/// by gaps of width `g` with period `p`, for the field component across
/// the gaps (capacitive-grid formula with substrate loading).
///
/// `C = (2·ε0·εeff·p / π)·ln(1 / sin(πg / 2p))`
pub fn patch_grid_capacitance(period: Meters, gap: Meters, eps_eff: f64) -> Farads {
    let arg = (std::f64::consts::PI * gap.0 / (2.0 * period.0)).sin();
    Farads(2.0 * EPS0 * eps_eff * period.0 / std::f64::consts::PI * (1.0 / arg).ln())
}

/// Effective permittivity seen by a grid printed on one face of a
/// substrate with air on the other side: the standard half-space average
/// `(εr + 1)/2`.
pub fn grid_eps_eff(material: &Material) -> f64 {
    (material.epsilon_r + 1.0) / 2.0
}

/// Resonant frequency of a patch of length `l` on the given substrate
/// (half-wave patch resonance).
pub fn patch_resonance(material: &Material, l: Meters) -> Hertz {
    let eps_eff = grid_eps_eff(material);
    Hertz(rfmath::units::SPEED_OF_LIGHT / (2.0 * l.0 * eps_eff.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_ohm_microstrip_on_fr4() {
        // A classic reference point: ~1.9 mm wide on 1 mm FR4 ≈ 50 Ω.
        let z = microstrip_z0(&Material::FR4, Meters::from_mm(1.9), Meters::from_mm(1.0));
        assert!((z - 50.0).abs() < 5.0, "Z0 = {z}");
    }

    #[test]
    fn eps_eff_is_between_one_and_er() {
        for w_mm in [0.2, 1.0, 3.0, 10.0] {
            let e = microstrip_eps_eff(&Material::FR4, Meters::from_mm(w_mm), Meters::from_mm(1.0));
            assert!(e > 1.0 && e < Material::FR4.epsilon_r, "εeff = {e}");
        }
    }

    #[test]
    fn wider_lines_have_lower_impedance() {
        let h = Meters::from_mm(1.0);
        let z_narrow = microstrip_z0(&Material::FR4, Meters::from_mm(0.4), h);
        let z_wide = microstrip_z0(&Material::FR4, Meters::from_mm(4.0), h);
        assert!(z_narrow > z_wide);
    }

    #[test]
    fn strip_inductance_grows_with_thinner_strips() {
        let p = Meters::from_mm(32.0);
        let thin = strip_grid_inductance(p, Meters::from_mm(0.4));
        let wide = strip_grid_inductance(p, Meters::from_mm(4.0));
        assert!(thin.0 > wide.0);
        // Order of magnitude: nanohenries for mm-scale grids.
        assert!(thin.nh() > 1.0 && thin.nh() < 100.0, "L = {} nH", thin.nh());
    }

    #[test]
    fn patch_capacitance_grows_with_smaller_gaps() {
        let p = Meters::from_mm(32.0);
        let eps = grid_eps_eff(&Material::FR4);
        let tight = patch_grid_capacitance(p, Meters::from_mm(0.4), eps);
        let loose = patch_grid_capacitance(p, Meters::from_mm(4.0), eps);
        assert!(tight.0 > loose.0);
        // Order of magnitude: fractions of a pF for mm-scale grids.
        assert!(
            tight.pf() > 0.05 && tight.pf() < 10.0,
            "C = {} pF",
            tight.pf()
        );
    }

    #[test]
    fn substrate_loading_increases_capacitance() {
        let p = Meters::from_mm(32.0);
        let g = Meters::from_mm(0.8);
        let air = patch_grid_capacitance(p, g, 1.0);
        let fr4 = patch_grid_capacitance(p, g, grid_eps_eff(&Material::FR4));
        assert!(fr4.0 > air.0 * 2.0);
    }

    #[test]
    fn patch_resonance_near_expected_band() {
        // A 23.2 mm BFS pattern element (Fig. 6b) on FR4 resonates in the
        // low GHz — the right neighbourhood for a 2.4 GHz design that is
        // then pulled on frequency by the varactor loading.
        let f = patch_resonance(&Material::FR4, Meters::from_mm(23.2));
        assert!(f.ghz() > 2.0 && f.ghz() < 6.0, "f = {} GHz", f.ghz());
    }
}
