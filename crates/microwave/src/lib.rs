//! # microwave — network-theory substrate for the LLAMA simulator
//!
//! The paper designs its metasurface with HFSS, but *reasons* about it in
//! circuit terms: S-parameters and transmission efficiency (Eq. 9–11),
//! phase-shifter bandwidth (Eq. 12), substrate loss tangents, and
//! varactor capacitance ranges. This crate implements that circuit-level
//! toolbox from scratch:
//!
//! * [`twoport`] — ABCD chain matrices and S-parameters, conversions and
//!   cascading (the scattering formalism of Eq. 9–10);
//! * [`polarized`] — dual-polarization four-port blocks with exact
//!   multiple-reflection cascading and frame rotation; implements the
//!   Eq. (11) transmission-efficiency measure;
//! * [`substrate`] — lossy dielectric materials (FR4, Rogers 5880) and
//!   slabs;
//! * [`lumped`] — R/L/C elements and resonators;
//! * [`varactor`] — the SMV1233 junction-capacitance model;
//! * [`phase_shifter`] — varactor-loaded line stages and the Eq. (12)
//!   bandwidth law;
//! * [`microstrip`] — quasi-static geometry→L/C synthesis formulas;
//! * [`analyzer`] — frequency sweeps, passband and bandwidth extraction.
//!
//! ## Example: why FR4 needs a thin, simple stack
//!
//! ```
//! use microwave::substrate::{Material, Slab, ETA0};
//! use microwave::twoport::Abcd;
//! use rfmath::units::Hertz;
//!
//! let f = Hertz::from_ghz(2.44);
//! // A thick FR4 slab dissipates measurably more than a thin one.
//! let thick = Abcd::slab(&Slab::from_mm(Material::FR4, 4.0), f).to_s(ETA0);
//! let thin = Abcd::slab(&Slab::from_mm(Material::FR4, 0.8), f).to_s(ETA0);
//! assert!(thick.dissipated_fraction() > thin.dissipated_fraction());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analyzer;
pub mod lumped;
pub mod microstrip;
pub mod phase_shifter;
pub mod polarized;
pub mod substrate;
pub mod twoport;
pub mod varactor;

pub use analyzer::{frequency_grid, sweep, sweep_db, Trace};
pub use phase_shifter::{line_bandwidth, LoadedStage, PhaseShifter};
pub use polarized::PolarizedS;
pub use substrate::{Material, Slab, ETA0};
pub use twoport::{Abcd, SParams};
pub use varactor::Varactor;
