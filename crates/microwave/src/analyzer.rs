//! Frequency-sweep "network analyzer".
//!
//! The simulation counterpart of sweeping a VNA (or an HFSS frequency
//! solve) across a band: evaluates a device-under-test callback over a
//! frequency grid and extracts the figures the paper reports — efficiency
//! curves, −3 dB passbands, in-band worst cases.

use rfmath::units::{Db, Hertz};

/// A sampled frequency-response trace (frequency, value-in-dB pairs).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Sample frequencies.
    pub freqs: Vec<Hertz>,
    /// Values in dB at each frequency.
    pub values_db: Vec<f64>,
}

impl Trace {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// True when the trace has no points.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Minimum value in dB over the whole trace.
    pub fn min_db(&self) -> f64 {
        self.values_db.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value in dB over the whole trace.
    pub fn max_db(&self) -> f64 {
        self.values_db
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Worst (minimum) value within `[lo, hi]`; `None` when no samples
    /// fall inside the interval.
    pub fn min_db_in_band(&self, lo: Hertz, hi: Hertz) -> Option<f64> {
        let vals: Vec<f64> = self
            .freqs
            .iter()
            .zip(&self.values_db)
            .filter(|(f, _)| f.0 >= lo.0 && f.0 <= hi.0)
            .map(|(_, &v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.into_iter().fold(f64::INFINITY, f64::min))
        }
    }

    /// The contiguous band around the global maximum where the trace
    /// stays above `threshold_db` relative to that maximum (e.g. −3 dB
    /// bandwidth). Returns `(f_lo, f_hi)`.
    pub fn passband(&self, threshold_db: Db) -> Option<(Hertz, Hertz)> {
        if self.is_empty() {
            return None;
        }
        let (peak_idx, peak) = self
            .values_db
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))?;
        let cutoff = peak + threshold_db.0; // threshold_db is negative
        let mut lo = peak_idx;
        while lo > 0 && self.values_db[lo - 1] >= cutoff {
            lo -= 1;
        }
        let mut hi = peak_idx;
        while hi + 1 < self.values_db.len() && self.values_db[hi + 1] >= cutoff {
            hi += 1;
        }
        Some((self.freqs[lo], self.freqs[hi]))
    }

    /// Width of the `threshold_db` passband.
    pub fn bandwidth(&self, threshold_db: Db) -> Option<Hertz> {
        self.passband(threshold_db)
            .map(|(lo, hi)| Hertz(hi.0 - lo.0))
    }

    /// Frequency of the trace maximum.
    pub fn peak_frequency(&self) -> Option<Hertz> {
        let (idx, _) = self
            .values_db
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))?;
        Some(self.freqs[idx])
    }
}

/// Builds a uniform frequency grid of `n ≥ 2` points spanning `[lo, hi]`.
pub fn frequency_grid(lo: Hertz, hi: Hertz, n: usize) -> Vec<Hertz> {
    assert!(n >= 2, "need at least two grid points");
    assert!(lo.0 < hi.0, "lo must be below hi");
    (0..n)
        .map(|i| Hertz(lo.0 + (hi.0 - lo.0) * i as f64 / (n - 1) as f64))
        .collect()
}

/// Sweeps a device-under-test callback over a frequency grid, collecting
/// a dB trace. The callback returns the (linear) power quantity to trace;
/// it is converted with `10·log10`.
pub fn sweep(freqs: &[Hertz], mut dut: impl FnMut(Hertz) -> f64) -> Trace {
    let mut t = Trace::default();
    for &f in freqs {
        t.freqs.push(f);
        t.values_db.push(Db::from_linear(dut(f)).0);
    }
    t
}

/// Sweeps a callback that already returns dB values.
pub fn sweep_db(freqs: &[Hertz], mut dut: impl FnMut(Hertz) -> f64) -> Trace {
    let mut t = Trace::default();
    for &f in freqs {
        t.freqs.push(f);
        t.values_db.push(dut(f));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lorentzian_trace() -> Trace {
        // A synthetic resonance centered at 2.45 GHz.
        let freqs = frequency_grid(Hertz::from_ghz(2.0), Hertz::from_ghz(2.9), 181);
        sweep(&freqs, |f| {
            let x = (f.ghz() - 2.45) / 0.08;
            1.0 / (1.0 + x * x)
        })
    }

    #[test]
    fn grid_is_inclusive_and_uniform() {
        let g = frequency_grid(Hertz::from_ghz(2.0), Hertz::from_ghz(3.0), 11);
        assert_eq!(g.len(), 11);
        assert!((g[0].ghz() - 2.0).abs() < 1e-12);
        assert!((g[10].ghz() - 3.0).abs() < 1e-12);
        assert!((g[5].ghz() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn peak_found_at_resonance() {
        let t = lorentzian_trace();
        let peak = t.peak_frequency().unwrap();
        assert!(
            (peak.ghz() - 2.45).abs() < 0.01,
            "peak = {} GHz",
            peak.ghz()
        );
        assert!(t.max_db().abs() < 0.01);
    }

    #[test]
    fn three_db_bandwidth_of_lorentzian() {
        // For 1/(1+x²) with x = (f−f0)/w, the −3 dB points are at x = ±1.
        let t = lorentzian_trace();
        let bw = t.bandwidth(Db(-3.0103)).unwrap();
        assert!(
            (bw.0 / 1e9 - 0.16).abs() < 0.02,
            "bandwidth = {} GHz",
            bw.0 / 1e9
        );
    }

    #[test]
    fn in_band_minimum() {
        let t = lorentzian_trace();
        let worst = t
            .min_db_in_band(Hertz::from_ghz(2.4), Hertz::from_ghz(2.5))
            .unwrap();
        // Band edges are 50 MHz from center → x=0.625 → ≈ −1.4 dB.
        assert!(worst < -1.0 && worst > -2.0, "worst = {worst}");
        assert!(t
            .min_db_in_band(Hertz::from_ghz(5.0), Hertz::from_ghz(6.0))
            .is_none());
    }

    #[test]
    fn sweep_db_passthrough() {
        let freqs = frequency_grid(Hertz(1.0), Hertz(2.0), 3);
        let t = sweep_db(&freqs, |f| -f.0);
        assert_eq!(t.values_db, vec![-1.0, -1.5, -2.0]);
        assert_eq!(t.min_db(), -2.0);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert!(t.passband(Db(-3.0)).is_none());
        assert!(t.peak_frequency().is_none());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn grid_rejects_single_point() {
        let _ = frequency_grid(Hertz(1.0), Hertz(2.0), 1);
    }
}
