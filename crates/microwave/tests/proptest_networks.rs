//! Property-based tests for the network-theory substrate: round-trip
//! conversions, reciprocity and passivity of random passive cascades,
//! and polarized-cascade consistency with scalar theory.

use microwave::polarized::PolarizedS;
use microwave::substrate::{Material, Slab, ETA0};
use microwave::twoport::Abcd;
use microwave::varactor::Varactor;
use proptest::prelude::*;
use rfmath::c64;
use rfmath::units::{Farads, Hertz, Meters, Volts};

/// Strategy: a random passive series/shunt/slab section.
fn passive_section() -> impl Strategy<Value = Abcd> {
    let f = Hertz(2.44e9);
    prop_oneof![
        // Series impedance with non-negative resistance.
        (0.0f64..200.0, -300.0f64..300.0).prop_map(|(r, x)| Abcd::series(c64(r, x))),
        // Shunt admittance with non-negative conductance.
        (0.0f64..0.05, -0.05f64..0.05).prop_map(|(g, b)| Abcd::shunt(c64(g, b))),
        // A lossy FR4 slab of random thickness.
        (0.2f64..4.0).prop_map(move |mm| { Abcd::slab(&Slab::from_mm(Material::FR4, mm), f) }),
        // An air gap.
        (1.0f64..40.0).prop_map(move |mm| Abcd::air_gap(Meters::from_mm(mm), f)),
    ]
}

proptest! {
    /// ABCD→S→ABCD round-trips for random passive sections.
    #[test]
    fn abcd_s_round_trip(sections in prop::collection::vec(passive_section(), 1..5)) {
        let net = Abcd::chain(&sections);
        let back = net.to_s(ETA0).to_abcd();
        let scale = net.0.frobenius_norm().max(1.0);
        prop_assert!(net.0.max_abs_diff(back.0) < 1e-7 * scale);
    }

    /// Chains of passive reciprocal sections stay passive and reciprocal.
    #[test]
    fn cascades_stay_passive_reciprocal(
        sections in prop::collection::vec(passive_section(), 1..6),
    ) {
        let s = Abcd::chain(&sections).to_s(ETA0);
        prop_assert!(s.is_reciprocal(1e-7), "S12 != S21");
        prop_assert!(s.is_passive(1e-7), "dissipated {}", s.dissipated_fraction());
    }

    /// Cascading is associative at the S-parameter level (via ABCD).
    #[test]
    fn cascade_associative(
        a in passive_section(),
        b in passive_section(),
        c in passive_section(),
    ) {
        let left = a.then(b).then(c);
        let right = a.then(b.then(c));
        prop_assert!(left.0.max_abs_diff(right.0) < 1e-9 * left.0.frobenius_norm().max(1.0));
    }

    /// The polarized cascade of axis-identical stages agrees with scalar
    /// ABCD theory on both axes.
    #[test]
    fn polarized_cascade_matches_scalar(
        sections in prop::collection::vec(passive_section(), 1..4),
    ) {
        let scalar = Abcd::chain(&sections).to_s(ETA0);
        let stages: Vec<PolarizedS> = sections
            .iter()
            .map(|sec| {
                let s = sec.to_s(ETA0);
                PolarizedS::from_axes(s, s)
            })
            .collect();
        let cascaded = PolarizedS::chain(&stages).expect("cascade exists");
        prop_assert!((cascaded.s21.a - scalar.s21).abs() < 1e-7);
        prop_assert!((cascaded.s21.d - scalar.s21).abs() < 1e-7);
        prop_assert!((cascaded.s11.a - scalar.s11).abs() < 1e-7);
        // No cross-polarization from axis-identical stages.
        prop_assert!(cascaded.s21.b.abs() < 1e-9);
        prop_assert!(cascaded.s21.c.abs() < 1e-9);
    }

    /// Frame rotation preserves passivity and total transmitted power
    /// for axis-symmetric stages.
    #[test]
    fn rotation_preserves_power(
        sec in passive_section(),
        theta in -1.5f64..1.5,
    ) {
        let s = sec.to_s(ETA0);
        let p = PolarizedS::from_axes(s, s);
        let r = p.rotated(rfmath::units::Radians(theta));
        prop_assert!((r.efficiency_x() - p.efficiency_x()).abs() < 1e-9);
        prop_assert!(r.is_passive(1e-9));
    }

    /// Varactor capacitance is monotone decreasing and its inverse
    /// round-trips over the working range.
    #[test]
    fn varactor_monotone_and_invertible(v in 0.0f64..15.0, dv in 0.01f64..5.0) {
        let d = Varactor::smv1233();
        let c1 = d.capacitance(Volts(v));
        let c2 = d.capacitance(Volts((v + dv).min(15.0)));
        prop_assert!(c2.0 <= c1.0 + 1e-18);
        let back = d.bias_for_capacitance(c1).expect("in range");
        prop_assert!((back.0 - v).abs() < 1e-6);
    }

    /// Input impedance of a lossless line terminated in its own Zc is Zc
    /// at any length (matched-line invariance).
    #[test]
    fn matched_line_invariance(len in 0.001f64..0.5, z0 in 20.0f64..400.0) {
        let f = Hertz(2.44e9);
        let beta = f.wavenumber();
        let line = Abcd::line(c64(z0, 0.0), c64(0.0, beta * len));
        let zin = line.input_impedance(c64(z0, 0.0));
        prop_assert!((zin - c64(z0, 0.0)).abs() < 1e-6 * z0);
    }

    /// A varactor-free check of capacitance bounds: C stays within the
    /// zero-bias and max-bias endpoints.
    #[test]
    fn varactor_bounds(v in -10.0f64..40.0) {
        let d = Varactor::smv1233();
        let c = d.capacitance(Volts(v));
        let c_max = d.capacitance(Volts(0.0));
        let c_min = d.capacitance(Volts(15.0));
        prop_assert!(c.0 <= c_max.0 + 1e-18);
        prop_assert!(c.0 >= c_min.0 - 1e-18);
        let _ = Farads(c.0);
    }
}
