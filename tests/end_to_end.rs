//! Cross-crate integration tests: the full system assembled through the
//! `llama` facade, exercising physics → devices → control together.

use llama::core::scenario::Scenario;
use llama::core::system::LlamaSystem;
use llama::metasurface::stack::BiasState;
use llama::rfmath::units::{Hertz, Watts};

#[test]
fn transmissive_optimization_recovers_the_link() {
    // The headline Figure 16 behaviour across three distances.
    for cm in [24.0, 36.0, 48.0] {
        let mut system = LlamaSystem::new(
            Scenario::transmissive_default()
                .with_distance_cm(cm)
                .with_seed(101),
        );
        let outcome = system.optimize();
        assert!(
            outcome.improvement.0 > 6.0,
            "{cm} cm: improvement = {:.1} dB",
            outcome.improvement.0
        );
        // The converged bias must actually be applied to the surface.
        assert_eq!(system.surface.bias, outcome.best_bias);
    }
}

#[test]
fn reflective_optimization_beats_the_bare_link() {
    let mut system = LlamaSystem::new(
        Scenario::reflective_default()
            .with_distance_cm(36.0)
            .with_seed(102),
    );
    let outcome = system.optimize();
    assert!(
        outcome.improvement.0 > 3.0,
        "reflective improvement = {:.1} dB",
        outcome.improvement.0
    );
}

#[test]
fn improvement_holds_across_the_ism_band() {
    // Figure 17's claim, spot-checked at the band edges and center.
    for ghz in [2.40, 2.44, 2.50] {
        let mut system = LlamaSystem::new(
            Scenario::transmissive_default()
                .with_frequency(Hertz::from_ghz(ghz))
                .with_seed(103),
        );
        let outcome = system.optimize();
        assert!(
            outcome.improvement.0 > 5.0,
            "{ghz} GHz: improvement = {:.1} dB",
            outcome.improvement.0
        );
    }
}

#[test]
fn matched_links_do_not_need_the_surface() {
    // Sanity: when the mounts are aligned, the best the surface can do
    // is roughly break even (its insertion loss caps the upside).
    let mut system = LlamaSystem::new(
        Scenario::transmissive_default()
            .with_mismatch_deg(0.0)
            .with_seed(104),
    );
    let outcome = system.optimize();
    assert!(
        outcome.improvement.0 < 3.0,
        "aligned link should not gain much, got {:.1} dB",
        outcome.improvement.0
    );
}

#[test]
fn bias_actually_steers_received_power() {
    let mut system = LlamaSystem::new(Scenario::transmissive_default().with_seed(105));
    let p1 = system.true_power_dbm(BiasState::new(2.0, 2.0)).0;
    let p2 = system.true_power_dbm(BiasState::new(2.0, 15.0)).0;
    let p3 = system.true_power_dbm(BiasState::new(15.0, 2.0)).0;
    let spread = [p1, p2, p3]
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        - [p1, p2, p3].iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread > 5.0, "bias steering spread = {spread:.1} dB");
}

#[test]
fn low_power_links_still_converge() {
    // 2 mW — the Figure 19 crossover region. The optimizer must still
    // find a state near the grid optimum even with measurement noise.
    let mut system = LlamaSystem::new(
        Scenario::transmissive_default()
            .with_tx_power(Watts::from_mw(2.0))
            .with_seed(106),
    );
    let outcome = system.optimize();
    assert!(outcome.best_power_dbm.0.is_finite());
    assert!(outcome.improvement.0 > 0.0);
}

#[test]
fn deployment_helpers_strip_the_surface() {
    let s = Scenario::reflective_default();
    let stripped = s.deployment.without_surface();
    assert_eq!(
        stripped.surface,
        llama::propagation::rays::SurfaceMount::None
    );
    assert!((stripped.tx_rx_distance().cm() - 70.0).abs() < 1e-9);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let mut system = LlamaSystem::new(Scenario::transmissive_default().with_seed(2024));
        let o = system.optimize();
        (o.best_bias, o.best_power_dbm.0, o.baseline_dbm.0)
    };
    assert_eq!(run(), run());
}
