//! Property-based integration tests on cross-crate physical invariants:
//! passivity and reciprocity of the full surface, monotone link budgets,
//! and controller convergence on arbitrary unimodal power landscapes.

use llama::control::sweep::{coarse_to_fine, SweepConfig};
use llama::metasurface::designs::fr4_optimized;
use llama::metasurface::response::Metasurface;
use llama::metasurface::stack::BiasState;
use llama::propagation::friis::path_gain_linear;
use llama::rfmath::jones::JonesVector;
use llama::rfmath::units::{Hertz, Meters};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full layered surface is passive and reciprocal for every bias
    /// state and in-band frequency: no cascade of slabs and sheets may
    /// ever amplify.
    #[test]
    fn surface_is_passive_and_reciprocal(
        vx in 0.0f64..30.0,
        vy in 0.0f64..30.0,
        f_ghz in 2.2f64..2.7,
    ) {
        let design = fr4_optimized();
        let r = design
            .stack
            .response(Hertz::from_ghz(f_ghz), BiasState::new(vx, vy))
            .expect("physical stacks always cascade");
        prop_assert!(r.is_passive(1e-9), "active at ({vx:.1}, {vy:.1}) V, {f_ghz:.2} GHz");
        prop_assert!(r.is_reciprocal(1e-8));
    }

    /// Transmission through the surface never exceeds unity for any
    /// incident linear polarization.
    #[test]
    fn transmittance_bounded(
        vx in 0.0f64..30.0,
        vy in 0.0f64..30.0,
        angle_deg in 0.0f64..180.0,
    ) {
        let mut surface = Metasurface::llama();
        surface.set_bias(BiasState::new(vx, vy));
        let t = surface
            .transmission(Hertz::from_ghz(2.44))
            .transmittance(JonesVector::linear_deg(angle_deg));
        prop_assert!(t <= 1.0 + 1e-9, "transmittance {t} > 1");
        prop_assert!(t >= 0.0);
    }

    /// Free-space path gain is monotone decreasing in distance and obeys
    /// the inverse-square law between any two distances.
    #[test]
    fn friis_inverse_square(d1 in 0.1f64..10.0, k in 1.1f64..8.0) {
        let f = Hertz::from_ghz(2.44);
        let g1 = path_gain_linear(f, Meters(d1));
        let g2 = path_gain_linear(f, Meters(d1 * k));
        prop_assert!(g2 < g1);
        prop_assert!((g1 / g2 - k * k).abs() < 1e-6 * k * k);
    }

    /// Algorithm 1 lands within one fine-grid step of the peak of any
    /// smooth unimodal power landscape over the bias plane.
    #[test]
    fn sweep_converges_on_unimodal_landscapes(
        px in 1.0f64..29.0,
        py in 1.0f64..29.0,
        width in 4.0f64..20.0,
    ) {
        let outcome = coarse_to_fine(&SweepConfig::paper_default(), |p| {
            let dx = (p.vx.0 - px) / width;
            let dy = (p.vy.0 - py) / width;
            (-(dx * dx + dy * dy)).exp()
        });
        // First iteration's grid step is 7.5 V; the refinement halves the
        // neighbourhood, so 4 V of slack is the guaranteed envelope.
        prop_assert!((outcome.best.vx.0 - px).abs() < 4.0,
            "vx {:.1} vs peak {px:.1}", outcome.best.vx.0);
        prop_assert!((outcome.best.vy.0 - py).abs() < 4.0,
            "vy {:.1} vs peak {py:.1}", outcome.best.vy.0);
    }

    /// The rotation the surface imparts on a linear probe is bounded by
    /// ±90° and varies smoothly with bias (no grid-cell jumps).
    #[test]
    fn rotation_is_bounded_and_smooth(vx in 2.0f64..28.0, vy in 2.0f64..28.0) {
        let f = Hertz::from_ghz(2.44);
        let probe = JonesVector::horizontal();
        let mut surface = Metasurface::llama();
        surface.set_bias(BiasState::new(vx, vy));
        let r1 = surface.measured_rotation(f, probe).0;
        surface.set_bias(BiasState::new(vx + 0.25, vy));
        let r2 = surface.measured_rotation(f, probe).0;
        prop_assert!(r1.abs() <= 90.0 && r2.abs() <= 90.0);
        // 0.25 V of bias never jumps the orientation by more than a few
        // degrees (smooth varactor curve ⇒ smooth rotation).
        let delta = (r1 - r2).abs().min(180.0 - (r1 - r2).abs());
        prop_assert!(delta < 6.0, "Δrotation {delta:.1}° across 0.25 V");
    }
}
