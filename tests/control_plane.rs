//! Integration tests for the control plane under adverse conditions:
//! lossy report channels, synchronization offsets, and the real-time
//! event loop's timing discipline.

use llama::control::sync::{estimate_offset, label_samples, BiasSchedule};
use llama::core::scenario::Scenario;
use llama::core::system::LlamaSystem;
use llama::metasurface::stack::BiasState;
use llama::rfmath::units::{Seconds, Volts};

#[test]
fn realtime_loop_matches_fast_path_quality() {
    let scenario = Scenario::transmissive_default().with_seed(301);
    let mut fast = LlamaSystem::new(scenario.clone());
    let f = fast.optimize();
    let mut realtime = LlamaSystem::new(scenario);
    let r = realtime.optimize_realtime();
    assert!(
        (f.best_power_dbm.0 - r.best_power_dbm.0).abs() < 3.0,
        "fast {:.1} vs realtime {:.1} dBm",
        f.best_power_dbm.0,
        r.best_power_dbm.0
    );
}

#[test]
fn realtime_loop_respects_the_switching_budget() {
    let mut system = LlamaSystem::new(Scenario::transmissive_default().with_seed(302));
    let outcome = system.optimize_realtime();
    // ≥ 51 switches at 20 ms each can't be faster than ~1 s of sim time.
    assert!(
        outcome.elapsed.0 >= 0.02 * outcome.probes as f64 * 0.9,
        "elapsed {:.2} s for {} switches",
        outcome.elapsed.0,
        outcome.probes
    );
}

#[test]
fn heavy_report_loss_degrades_gracefully() {
    let mut clean = LlamaSystem::new(Scenario::transmissive_default().with_seed(303));
    let clean_out = clean.optimize_realtime();
    let mut lossy = LlamaSystem::new(Scenario::transmissive_default().with_seed(303))
        .with_report_faults(0.4, 0.1);
    let lossy_out = lossy.optimize_realtime();
    // Still converges…
    assert!(lossy_out.improvement.0 > 3.0);
    // …but pays in wall-clock (timeouts and retries).
    assert!(
        lossy_out.elapsed.0 > clean_out.elapsed.0,
        "lossy {:.2}s should exceed clean {:.2}s",
        lossy_out.elapsed.0,
        clean_out.elapsed.0
    );
}

#[test]
fn synchronization_labels_survive_clock_offset() {
    // An Eq. 13 end-to-end check on a realistic schedule: 50 states at
    // 20 ms, receiver clock offset 13 ms, 1 kHz power sampling.
    let schedule = BiasSchedule::linear(
        Seconds(0.0),
        Seconds(0.02),
        (Volts(0.0), Volts(0.0)),
        (Volts(0.6), Volts(0.6)),
        50,
    );
    let true_td = 0.013;
    let samples: Vec<(Seconds, f64)> = (0..1000)
        .map(|i| {
            let t_rx = i as f64 / 1000.0 + true_td;
            let idx = ((t_rx - true_td) / 0.02).floor() as usize;
            (Seconds(t_rx), (idx % 50) as f64)
        })
        .collect();
    let est = estimate_offset(&schedule, &samples, 40);
    let err = (est.0 - true_td).abs().min(0.02 - (est.0 - true_td).abs());
    assert!(err < 0.002, "offset error {err:.4} s");

    let buckets = label_samples(&schedule, &samples, est, Seconds(0.002));
    let clean = buckets
        .iter()
        .enumerate()
        .filter(|(idx, b)| b.iter().all(|&v| v as usize == idx % 50))
        .count();
    assert!(clean >= 48, "only {clean}/50 buckets cleanly labeled");
}

#[test]
fn controller_convergence_point_is_on_the_grid() {
    let mut system = LlamaSystem::new(Scenario::transmissive_default().with_seed(304));
    let outcome = system.optimize_realtime();
    let b: BiasState = outcome.best_bias;
    assert!((0.0..=30.0).contains(&b.vx.0));
    assert!((0.0..=30.0).contains(&b.vy.0));
}
