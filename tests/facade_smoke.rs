//! Facade smoke test: the README/lib.rs quickstart claim, pinned.
//!
//! A downstream user depending on `llama` alone must be able to build
//! the paper's default transmissive scenario, run the optimizer, and
//! beat the unoptimized baseline — deterministically for a fixed seed.

use llama::core::scenario::Scenario;
use llama::core::system::LlamaSystem;

#[test]
fn quickstart_optimize_beats_baseline() {
    let scenario = Scenario::transmissive_default()
        .with_distance_cm(36.0)
        .with_seed(7);
    let mut system = LlamaSystem::new(scenario);

    let baseline = system.baseline_power_dbm();
    let outcome = system.optimize();
    assert!(
        outcome.best_power_dbm.0 > baseline.0,
        "surface must beat baseline: {:.1} vs {:.1} dBm",
        outcome.best_power_dbm.0,
        baseline.0
    );
}

#[test]
fn quickstart_is_deterministic_in_the_seed() {
    let run = |seed: u64| {
        let mut system = LlamaSystem::new(
            Scenario::transmissive_default()
                .with_distance_cm(36.0)
                .with_seed(seed),
        );
        let baseline = system.baseline_power_dbm();
        let outcome = system.optimize();
        (baseline, outcome.best_power_dbm, outcome.best_bias)
    };
    let (b1, p1, bias1) = run(7);
    let (b2, p2, bias2) = run(7);
    assert_eq!(b1, b2, "baseline must be reproducible");
    assert_eq!(p1, p2, "optimized power must be reproducible");
    assert_eq!(bias1, bias2, "converged bias must be reproducible");
    // A different seed is allowed to land elsewhere, but the claim
    // itself (surface helps) must hold there too.
    let (b3, p3, _) = run(1234);
    assert!(p3.0 > b3.0);
}

#[test]
fn facade_reexports_every_layer() {
    // One symbol per re-exported crate, so a facade regression (a crate
    // dropped from the root manifest) fails loudly here.
    let _ = llama::rfmath::units::Hertz::from_ghz(2.44);
    let _ = llama::microwave::substrate::Material::FR4;
    let _ = llama::metasurface::stack::BiasState::new(6.0, 6.0);
    let _ = llama::propagation::antenna::Antenna::directional_panel();
    let _ = llama::control::sweep::SweepConfig::paper_default();
    let _ = llama::devices::report::ReportPacket::new(
        0,
        llama::rfmath::units::Seconds(0.0),
        llama::rfmath::units::Dbm(-50.0),
    );
    let _ = llama::core::scenario::Scenario::transmissive_default();
}
