//! Quickstart: rescue a polarization-mismatched IoT link.
//!
//! Reproduces the paper's headline demo end to end: a transmitter and
//! receiver with orthogonally oriented antennas (the worst-case mismatch
//! of Figure 1), a LLAMA metasurface between them, and the controller
//! sweeping the two bias voltages until the link recovers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use llama::core::scenario::Scenario;
use llama::core::system::LlamaSystem;
use llama::metasurface::stack::BiasState;

fn main() {
    // The paper's §4 controlled setup: USRP endpoints with directional
    // panels 36 cm apart, fully mismatched (90°), absorber environment,
    // surface midway.
    let scenario = Scenario::transmissive_default()
        .with_distance_cm(36.0)
        .with_seed(7);

    println!("LLAMA quickstart — transmissive link optimization");
    println!("  carrier      : {:.3} GHz", scenario.frequency.ghz());
    println!("  tx power     : {:.1} mW", scenario.tx_power.mw());
    println!("  mismatch     : {:.0}°", scenario.link().mismatch_deg());
    println!();

    let mut system = LlamaSystem::new(scenario);

    // Step 1: baseline without the surface (averaged measurement).
    let baseline = system.baseline_power_dbm();
    println!("baseline (no surface)        : {baseline:.1}");

    // Step 2: a couple of manual bias states, to see the knob work.
    for (vx, vy) in [(2.0, 2.0), (15.0, 2.0), (2.0, 15.0)] {
        let p = system.true_power_dbm(BiasState::new(vx, vy));
        println!("bias ({vx:>4.1} V, {vy:>4.1} V)       : {p:.1}");
    }

    // Step 3: let Algorithm 1 find the optimum.
    let outcome = system.optimize();
    println!();
    println!("Algorithm 1 converged:");
    println!(
        "  best bias    : Vx = {:.1} V, Vy = {:.1} V",
        outcome.best_bias.vx.0, outcome.best_bias.vy.0
    );
    println!("  best power   : {:.1}", outcome.best_power_dbm);
    println!(
        "  improvement  : {:.1} dB over baseline",
        outcome.improvement.0
    );
    println!(
        "  search cost  : {} probes, {:.2} s at the PSU's 50 Hz budget",
        outcome.probes, outcome.elapsed.0
    );

    // The paper reports up to 15 dB of transmissive improvement; anything
    // above ~8 dB means the rotator is doing its job in this geometry.
    assert!(
        outcome.improvement.0 > 5.0,
        "expected a substantial improvement, got {:.1} dB",
        outcome.improvement.0
    );
    println!();
    println!("ok: the surface rescued the mismatched link.");
}
