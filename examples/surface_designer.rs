//! Surface designer: explore the §3.2 materials trade-off interactively.
//!
//! Sweeps the three metasurface designs — the Rogers 5880 reference, the
//! naive FR4 substitution, and LLAMA's optimized FR4 stack — through the
//! frequency band and the bias plane, printing efficiency curves, the
//! achievable rotation range, and the fabrication bill of materials.
//! This is the design-space tour a practitioner would run before
//! committing a panel to fab.
//!
//! ```sh
//! cargo run --release --example surface_designer
//! ```

use llama::metasurface::bias::RotationMap;
use llama::metasurface::designs::{fr4_naive, fr4_optimized, rogers_reference};
use llama::metasurface::fabrication::estimate_bom;
use llama::metasurface::geometry::PanelGeometry;
use llama::metasurface::stack::BiasState;
use llama::metasurface::tables::TABLE1_VOLTAGES;
use llama::rfmath::units::Hertz;

fn main() {
    let geometry = PanelGeometry::llama_prototype();
    let designs = [rogers_reference(), fr4_naive(), fr4_optimized()];

    println!("LLAMA surface designer — §3.2 design-space tour");
    println!();
    println!(
        "{:<28} {:>8} {:>12} {:>14} {:>12} {:>12}",
        "design", "boards", "in-band eff", "rotation span", "panel cost", "$/unit"
    );
    println!("{}", "-".repeat(92));

    for design in &designs {
        // Worst in-band efficiency at mid bias across both polarizations.
        let mut worst = f64::INFINITY;
        for f_mhz in (2400..=2500).step_by(10) {
            let f = Hertz::from_mhz(f_mhz as f64);
            if let Some(r) = design.stack.response(f, BiasState::new(6.0, 6.0)) {
                worst = worst.min(r.efficiency_x_db().0).min(r.efficiency_y_db().0);
            }
        }

        // Rotation range over the paper's Table 1 bias grid.
        let map = RotationMap::from_design(design, Hertz::from_ghz(2.44), &TABLE1_VOLTAGES);
        let (lo, hi) = map.magnitude_range();

        // Fabrication economics at prototype volume.
        let bom = estimate_bom(design, &geometry, geometry.units);

        println!(
            "{:<28} {:>8} {:>9.1} dB {:>7.1}–{:>4.1}° {:>10.0} $ {:>10.2} $",
            design.name,
            design.stack.board_count(),
            worst,
            lo.0,
            hi.0,
            bom.total_usd(),
            bom.per_unit_usd(&geometry),
        );
    }

    println!();
    println!("The §3.2 story in three rows:");
    println!("  * the Rogers reference performs but costs an order of magnitude more;");
    println!("  * dropping FR4 into the same structure wrecks the in-band efficiency");
    println!("    (dielectric ESR in every high-Q sheet);");
    println!("  * the optimized stack — fewer, thinner, lower-Q layers — restores the");
    println!("    efficiency at FR4 prices, which is the LLAMA design.");
    println!();

    // Bias-plane tour for the optimized design: what the controller's
    // two knobs actually do.
    let llama = fr4_optimized();
    let map = RotationMap::from_design(&llama, Hertz::from_ghz(2.44), &TABLE1_VOLTAGES);
    println!("Optimized design: rotation (degrees) over the (Vx, Vy) plane");
    print!("        Vx →");
    for v in &TABLE1_VOLTAGES {
        print!("{v:>7.0}");
    }
    println!();
    for &vy in &TABLE1_VOLTAGES {
        print!("Vy {vy:>5.0} |");
        for &vx in &TABLE1_VOLTAGES {
            print!("{:>7.1}", map.rotation_deg(BiasState::new(vx, vy)).0);
        }
        println!();
    }
    let (best_bias, best_deg) = map.argmax_magnitude();
    println!();
    println!(
        "largest rotation: {:.1}° at Vx = {:.0} V, Vy = {:.0} V (paper's Table 1 peaks at 48.7°)",
        best_deg.0, best_bias.vx.0, best_bias.vy.0
    );
}
