//! Respiration sensing through the metasurface (paper §5.2.2).
//!
//! A subject breathes between a low-power transceiver pair and the
//! LLAMA panel. At 5 mW the chest's millimetre-scale path modulation is
//! buried in RSS measurement noise — until the surface's reflective
//! path lifts the illumination. The example prints both traces and the
//! detector's verdict.
//!
//! ```sh
//! cargo run --release --example respiration_sensing
//! ```

use llama::core::render::sparkline;
use llama::core::scenario::Scenario;
use llama::core::sensing::{run_sensing, SensingConfig};
use llama::devices::human::HumanTarget;
use llama::metasurface::response::Metasurface;
use llama::rfmath::units::{Meters, Watts};

fn main() {
    let scenario = Scenario::reflective_default()
        .with_distance_cm(200.0) // surface 2 m from the pair, as in §5.2.2
        .with_tx_power(Watts::from_mw(5.0))
        .with_seed(17);
    let subject = HumanTarget::resting_adult(Meters(4.2));
    let config = SensingConfig::default();

    println!("Respiration sensing at {:.0} mW", scenario.tx_power.mw());
    println!(
        "subject: {:.0} breaths/min, chest travel {:.0} mm p-p",
        subject.breaths_per_minute,
        subject.chest_displacement.mm()
    );
    println!();

    let without = run_sensing(&scenario, &subject, None, &config);
    let surface = Metasurface::llama();
    let with = run_sensing(&scenario, &subject, Some(&surface), &config);

    let series_with: Vec<f64> = with.trace.iter().map(|(_, p)| p.0).take(240).collect();
    let series_without: Vec<f64> = without.trace.iter().map(|(_, p)| p.0).take(240).collect();

    print!(
        "{}",
        sparkline("RSS with surface (first 24 s)", &series_with)
    );
    print!(
        "{}",
        sparkline("RSS without surface (first 24 s)", &series_without)
    );
    println!();
    println!(
        "with surface    : mean {:.1} dBm, respiration band SNR {:.1} dB, detected {:?} bpm",
        with.mean_dbm,
        with.band_snr_db,
        with.detected_bpm.map(|b| (b * 10.0).round() / 10.0)
    );
    println!(
        "without surface : mean {:.1} dBm, respiration band SNR {:.1} dB, detected {:?}",
        without.mean_dbm, without.band_snr_db, without.detected_bpm
    );
    println!();

    match (with.detected_bpm, without.detected_bpm) {
        (Some(bpm), None) => println!(
            "ok: breathing ({bpm:.1} bpm) is only detectable with the surface — the Figure 23 result."
        ),
        (Some(bpm), Some(_)) => println!(
            "note: detected {bpm:.1} bpm in both runs; the surface still raised the band SNR by {:.1} dB.",
            with.band_snr_db - without.band_snr_db
        ),
        _ => println!("note: detection failed; try a different seed or longer capture."),
    }
}
