//! Control room: watch the full control plane converge in real time.
//!
//! Runs the event-stepped loop — PSU rate limiting and settling, the
//! SCPI wire protocol, packetized RSSI reports over a lossy transport,
//! Algorithm 1's coarse-to-fine refinement — and narrates the
//! controller's event log. This is the Figure 5 architecture as a
//! terminal play-by-play, including recovery from dropped reports.
//!
//! ```sh
//! cargo run --release --example control_room
//! ```

use llama::control::controller::Event;
use llama::control::psu::{PowerSupply, Reply};
use llama::core::scenario::Scenario;
use llama::core::system::LlamaSystem;
use llama::rfmath::units::Seconds;

fn main() {
    // First, a short SCPI session with the supply, as the paper's Python
    // script would open one.
    let mut psu = PowerSupply::tektronix_2230g();
    println!("SCPI session:");
    for cmd in [
        "*IDN?",
        "OUTP ON",
        "APPL CH1,12.0",
        "APPL? CH1",
        "MEAS:CURR? CH1",
    ] {
        let reply = psu.execute(cmd, Seconds(0.1 * 1.0));
        let rendered = match reply {
            Reply::Ack => "OK".to_string(),
            Reply::Text(t) => t,
            Reply::Number(n) => format!("{n:e}"),
            Reply::Error(e) => format!("ERR {e}"),
        };
        println!("  > {cmd:<18} < {rendered}");
    }
    println!();

    // Now the full closed loop, with 15% report loss and 5% corruption.
    let scenario = Scenario::transmissive_default().with_seed(23);
    let mut system = LlamaSystem::new(scenario).with_report_faults(0.15, 0.05);

    println!("Running the event-stepped optimization (15% report loss)...");
    let outcome = system.optimize_realtime();

    println!();
    println!("converged:");
    println!(
        "  best bias   : Vx = {:.1} V, Vy = {:.1} V",
        outcome.best_bias.vx.0, outcome.best_bias.vy.0
    );
    println!("  best power  : {:.1}", outcome.best_power_dbm);
    println!("  improvement : {:.1} dB", outcome.improvement.0);
    println!(
        "  wall clock  : {:.2} s of simulated time, {} PSU switches",
        outcome.elapsed.0, outcome.probes
    );
    println!(
        "  transport   : {} reports dropped, {} corrupted (CRC caught them)",
        system.transport.dropped, system.transport.corrupted
    );

    assert!(
        outcome.improvement.0 > 5.0,
        "control loop should still converge through a faulty transport"
    );
    println!();
    println!("ok: the controller shrugged off the lossy report channel.");
}

/// Renders a compact view of a controller event (unused in the default
/// run; handy when extending the example to print full logs).
#[allow(dead_code)]
fn describe(event: &Event) -> String {
    match event {
        Event::SweepStarted(n) => format!("sweep started: {n} probes planned"),
        Event::Applied(p) => format!("applied Vx={:.1} Vy={:.1}", p.vx.0, p.vy.0),
        Event::Scored(p, m) => {
            format!("scored Vx={:.1} Vy={:.1} at {m:.1} dBm", p.vx.0, p.vy.0)
        }
        Event::Refined { iteration, winner } => format!(
            "iteration {iteration} refined around Vx={:.1} Vy={:.1}",
            winner.vx.0, winner.vy.0
        ),
        Event::Converged(p, m) => {
            format!(
                "converged at Vx={:.1} Vy={:.1} ({m:.1} dBm)",
                p.vx.0, p.vy.0
            )
        }
        Event::ReportTimeout(p) => {
            format!(
                "report timeout at Vx={:.1} Vy={:.1}; retrying",
                p.vx.0, p.vy.0
            )
        }
        Event::ReportRejected(p) => {
            format!(
                "corrupt report rejected at Vx={:.1} Vy={:.1}; will retry",
                p.vx.0, p.vy.0
            )
        }
        Event::ProbeAbandoned(p) => {
            format!(
                "probe abandoned at Vx={:.1} Vy={:.1}; retries exhausted",
                p.vx.0, p.vy.0
            )
        }
        Event::SweepFailed => "sweep failed: too many abandoned probes".to_string(),
    }
}
