//! IoT link clinic: what the surface does for a real low-cost device.
//!
//! Walks the Figure 20 scenario: a Wi-Fi AP talking to an ESP8266-based
//! Arduino across a living room, with the station's antenna orientation
//! drifting (a wearable on a moving arm, a sensor knocked sideways).
//! For each orientation we show the ESP8266's quantized RSSI, the
//! 802.11g rate it can sustain, and what the surface recovers.
//!
//! ```sh
//! cargo run --release --example iot_link_clinic
//! ```

use llama::core::scenario::Scenario;
use llama::core::system::LlamaSystem;
use llama::devices::wifi::{AccessPoint, WifiStation};
use llama::rfmath::rng::SeedSplitter;
use llama::rfmath::stats;

fn main() {
    println!("IoT link clinic — ESP8266 station vs antenna orientation");
    println!();
    println!(
        "{:>10} | {:>12} {:>10} {:>10} | {:>12} {:>10} {:>10}",
        "mismatch", "RSSI w/o", "rate", "tput", "RSSI with", "rate", "tput"
    );
    println!(
        "{:>10} | {:>12} {:>10} {:>10} | {:>12} {:>10} {:>10}",
        "(deg)", "(dBm)", "(Mbps)", "(Mbps)", "(dBm)", "(Mbps)", "(Mbps)"
    );
    println!("{}", "-".repeat(88));

    let ap = AccessPoint::netgear_n300();

    for mismatch in [0.0, 30.0, 60.0, 75.0, 90.0] {
        let scenario = Scenario::wifi_iot_default()
            .with_mismatch_deg(mismatch)
            .with_seed(11);
        let mut station = WifiStation::esp8266(&SeedSplitter::new(11));

        // Without the surface: the raw (fading + quantization) RSSI.
        let p_without = scenario.link().received_dbm(None);
        let rssi_without = stats::mean(&station.read_rssi_batch(p_without, 200));
        let rate_without = station.achievable_rate_mbps(p_without).unwrap_or(0.0);
        let tput_without = ap.downlink_throughput_mbps(&station, p_without);

        // With the surface, after the controller converges.
        let mut system = LlamaSystem::new(scenario);
        let outcome = system.optimize();
        let p_with = outcome.best_power_dbm;
        let rssi_with = stats::mean(&station.read_rssi_batch(p_with, 200));
        let rate_with = station.achievable_rate_mbps(p_with).unwrap_or(0.0);
        let tput_with = ap.downlink_throughput_mbps(&station, p_with);

        println!(
            "{mismatch:>10.0} | {rssi_without:>12.1} {rate_without:>10.0} {tput_without:>10.1} \
             | {rssi_with:>12.1} {rate_with:>10.0} {tput_with:>10.1}"
        );
    }

    println!();
    println!("Reading the table:");
    println!("  * aligned mounts (0°) need no help — the surface neither adds nor costs much;");
    println!("  * past ~60° of drift the bare link sheds MCS steps; at 90° it is fragile;");
    println!("  * the surface's polarization rotation recovers the RSSI and the rate ladder,");
    println!("    which is exactly the Figure 20 distribution shift in throughput terms.");
}
