//! Polarization reuse and access control (the paper's §7 outlook).
//!
//! Several IoT devices at different antenna orientations share one
//! LLAMA surface. One bias state must serve them all — or deliberately
//! serve *one* of them. This example runs both policies:
//!
//! * max-min fairness: the broadcast/coexistence setting;
//! * favor/suppress: polarization as a crude access-control key, putting
//!   a polarization null on the neighbour.
//!
//! ```sh
//! cargo run --release --example polarization_reuse
//! ```

use llama::core::multilink::{baseline_dbm, optimize_favor, optimize_max_min, SharedReceiver};
use llama::core::scenario::Scenario;
use llama::propagation::antenna::{Antenna, OrientedAntenna};
use llama::rfmath::units::Degrees;

fn main() {
    let base = Scenario::transmissive_default().with_seed(42);

    // Three devices at awkward relative orientations.
    let receivers = vec![
        SharedReceiver {
            rx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(40.0)),
            label: "thermostat (40°)",
        },
        SharedReceiver {
            rx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(85.0)),
            label: "camera (85°)",
        },
        SharedReceiver {
            rx: OrientedAntenna::new(Antenna::directional_panel(), Degrees(120.0)),
            label: "door sensor (120°)",
        },
    ];

    println!("Polarization reuse — three devices, one surface");
    println!();
    println!("per-device baselines (no surface):");
    for r in &receivers {
        println!("  {:<22} {:.1}", r.label, baseline_dbm(&base, &r.rx));
    }
    println!();

    // Policy 1: fairness.
    let fair = optimize_max_min(&base, &receivers, 13);
    println!(
        "max-min fairness: bias Vx = {:.1} V, Vy = {:.1} V",
        fair.bias.vx.0, fair.bias.vy.0
    );
    for (r, p) in receivers.iter().zip(&fair.powers_dbm) {
        println!("  {:<22} {p:>8.1} dBm", r.label);
    }
    println!("  worst link: {:.1} dBm", fair.min_dbm());
    println!();

    // Policy 2: favor the door sensor, suppress the rest.
    let favored = 2;
    let exclusive = optimize_favor(&base, &receivers, favored, 13);
    println!(
        "favor '{}': bias Vx = {:.1} V, Vy = {:.1} V",
        receivers[favored].label, exclusive.bias.vx.0, exclusive.bias.vy.0
    );
    for (i, (r, p)) in receivers.iter().zip(&exclusive.powers_dbm).enumerate() {
        let marker = if i == favored { " <= favored" } else { "" };
        println!("  {:<22} {p:>8.1} dBm{marker}", r.label);
    }
    println!(
        "  isolation over best other device: {:.1} dB",
        exclusive.isolation_db(favored)
    );
    println!();
    println!(
        "One panel, two behaviours: a fair compromise rotation, or a \
         polarization null dropped on the neighbours — the §7 \"polarization \
         reuse or access control\" idea, quantified."
    );
}
